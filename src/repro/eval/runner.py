"""Crash-safe distributed experiment runner (DESIGN.md §16).

A *sweep* decomposes an experiment (folds, ablation steps × seeds,
hyperparameter grids, or arbitrary ``parallel_map`` work) into durable
task files under one directory; *runner* processes — possibly on
separate hosts sharing the directory — claim tasks and publish results
through :mod:`repro.eval.resultstore` conventions. The contract is that
a sweep always terminates with every task either **done** or explicitly
**quarantined**, never silently lost, no matter which runners crash:

* **claim** — one winner per task via the ``O_EXCL`` idiom
  (`serve/registry.py` uses the same one for version claims);
* **lease + heartbeat** — a claim is a lease file whose mtime the
  holder renews from a heartbeat thread; a runner that dies (or is
  frozen past the lease) stops renewing, the lease expires, and a peer
  *reclaims* the task through an atomic-rename takeover (exactly one
  reclaimer wins ``os.rename`` of the expired lease);
* **retry with capped exponential backoff** — a task that raises is
  released with a ``next_retry_at`` stamp; any runner picks it up after
  the backoff;
* **quarantine** — after ``max_attempts`` raising attempts (or
  ``max_reclaims`` lease expiries, the crash-poison signature) the task
  is parked under ``quarantine/`` with the failing traceback in a
  sidecar, and the sweep can still terminate;
* **idempotent results** — results are stored by content fingerprint,
  so a frozen runner finishing *after* its task was reclaimed and
  completed by a peer merely repeats an identical ``os.replace``.

Task state machine (every transition is one atomic file operation)::

    pending ── claim (O_EXCL lease) ──────────▶ running
    running ── result + done marker ──────────▶ done
    running ── raise, attempts < K ───────────▶ pending (retry_at)
    running ── raise, attempts = K ───────────▶ quarantined
    running ── lease expires (runner died) ───▶ pending (reclaim)
    pending ── reclaims > max_reclaims ───────▶ quarantined

Fault sites for the chaos harness (``repro.serve.faults``):
``task.claim`` (claim scans), ``runner.heartbeat`` (lease renewal),
``runner.task`` (task execution), ``store.write`` (result publishing) —
all with the error/delay/crash kinds; a ``crash`` kills the runner
process like an OOM would (``os._exit``, no cleanup, lease left to
expire).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import signal
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.eval.resultstore import (
    ResultStore,
    atomic_write_json,
    exclusive_create,
    fingerprint,
    read_json,
)

__all__ = [
    "ChaosPlan",
    "Runner",
    "RunnerCrashed",
    "Sweep",
    "SweepConfig",
    "SweepReport",
    "SweepStatus",
    "TaskSpec",
    "ablation_sweep_tasks",
    "demo_sweep_tasks",
    "folds_sweep_tasks",
    "merge_ablation",
    "merge_folds",
    "register_task_kind",
    "run_demo_task",
    "run_sweep_local",
    "task_kinds",
]


def _fire(site: str) -> None:
    """Fire a fault site (deferred import: serve pulls heavy modules and
    imports this package back through the registry)."""
    from repro.serve import faults

    faults.fire(site)


class RunnerCrashed(RuntimeError):
    """A task was quarantined because it kept killing its runners."""


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepConfig:
    """Durability knobs, persisted in ``sweep.json`` so every runner —
    including one started later by ``scripts/sweep.py resume`` — plays
    by the same lease and retry rules."""

    #: a lease not renewed for this long is expired and reclaimable
    lease_seconds: float = 10.0
    #: heartbeat renewal period (must be well under ``lease_seconds``)
    heartbeat_seconds: float = 2.0
    #: raising attempts before quarantine
    max_attempts: int = 3
    #: lease expiries before quarantine (the crash-poison bound)
    max_reclaims: int = 2
    #: capped exponential backoff for retries: base * 2**(attempt-1)
    backoff_base_seconds: float = 0.1
    backoff_cap_seconds: float = 5.0

    def backoff(self, attempts: int) -> float:
        return min(
            self.backoff_cap_seconds,
            self.backoff_base_seconds * (2.0 ** max(0, attempts - 1)),
        )


@dataclass(frozen=True)
class TaskSpec:
    """One unit of sweep work, durable as ``tasks/<task_id>.json``.

    ``params`` must be JSON-serializable; anything richer (the pickled
    callable of a ``parallel_map`` task) rides in a payload sidecar.
    The ``fingerprint`` keys the result in the sweep's store — grids
    dedupe through it, and a late duplicate execution republishes
    identical bytes.
    """

    task_id: str
    index: int
    kind: str
    fingerprint: str
    params: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(doc: dict) -> "TaskSpec":
        return TaskSpec(
            task_id=doc["task_id"],
            index=int(doc["index"]),
            kind=doc["kind"],
            fingerprint=doc["fingerprint"],
            params=doc.get("params", {}),
        )


@dataclass
class SweepStatus:
    total: int = 0
    done: int = 0
    quarantined: int = 0
    claimed: int = 0
    retry_wait: int = 0
    pending: int = 0
    reclaims: int = 0

    @property
    def terminal(self) -> bool:
        return self.total > 0 and self.done + self.quarantined == self.total

    @property
    def lost(self) -> int:
        return self.total - self.done - self.quarantined

    def to_json(self) -> dict:
        return {
            "total": self.total,
            "done": self.done,
            "quarantined": self.quarantined,
            "claimed": self.claimed,
            "retry_wait": self.retry_wait,
            "pending": self.pending,
            "reclaims": self.reclaims,
            "terminal": self.terminal,
        }


# ----------------------------------------------------------------------
# task kinds: name -> fn(sweep, spec) -> result object. Registered by
# name so task files stay JSON and any host that imports the code can
# execute them; experiment kinds import their heavyweight modules
# lazily to keep the runner importable from the eval hot path.
_TASK_KINDS: dict[str, callable] = {}


def register_task_kind(name: str, fn) -> None:
    _TASK_KINDS[name] = fn


def task_kinds() -> tuple[str, ...]:
    return tuple(sorted(_TASK_KINDS))


def _run_call_task(sweep: "Sweep", spec: TaskSpec):
    fn, item = sweep.load_payload(spec)
    return fn(item)


def run_demo_task(params: dict) -> dict:
    """Deterministic single-threaded compute workload (the chaos
    harness and CI smoke run on it: no dataset builds, byte-stable
    results across processes)."""
    import numpy as np

    sleep_s = float(params.get("sleep_s", 0.0))
    if sleep_s > 0.0:
        time.sleep(sleep_s)
    rng = np.random.default_rng(int(params.get("seed", 0)))
    x = rng.standard_normal(int(params.get("size", 50_000)))
    for _ in range(int(params.get("reps", 0))):
        x = np.tanh(x * 1.0009) + 1e-4
    return {
        "seed": int(params.get("seed", 0)),
        "checksum": float(x.sum()),
        "norm": float((x * x).sum()),
    }


def _run_demo_kind(sweep: "Sweep", spec: TaskSpec):
    return run_demo_task(spec.params)


def _run_fold_kind(sweep: "Sweep", spec: TaskSpec):
    from repro.eval import experiments as ex

    scale = sweep.load_config()
    return ex._run_fold_with_stats(
        scale,
        ex._worker_sample_store(scale),
        spec.params["test_dataset"],
        tuple(spec.params["train_datasets"]),
    )


def _run_ablation_kind(sweep: "Sweep", spec: TaskSpec):
    from repro.eval import experiments as ex

    scale = sweep.load_config()
    _, config = ex.ABLATION_STEPS[int(spec.params["step_index"])]
    return ex._ablation_step_seed(
        scale,
        ex._worker_sample_store(scale),
        spec.params["test_dataset"],
        config,
        int(spec.params["seed_offset"]),
    )


register_task_kind("call", _run_call_task)
register_task_kind("demo", _run_demo_kind)
register_task_kind("fold", _run_fold_kind)
register_task_kind("ablation", _run_ablation_kind)


# ----------------------------------------------------------------------
class Sweep:
    """A durable work queue under one directory.

    Layout (every file written atomically or claimed O_EXCL)::

        sweep.json                  config + identity
        config.pkl                  optional pickled experiment config
        tasks/<id>.json             task specs
        tasks/<id>.payload.pkl      pickled payload (call tasks)
        leases/<id>.lease           claim: JSON token, mtime = heartbeat
        attempts/<id>.json          retry/reclaim bookkeeping
        done/<id>.json              completion markers
        quarantine/<id>.json        poison markers (+ .traceback.txt)
        results/task_<fp>.pkl       a ResultStore holding task results
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.tasks_dir = self.root / "tasks"
        self.leases_dir = self.root / "leases"
        self.attempts_dir = self.root / "attempts"
        self.done_dir = self.root / "done"
        self.quarantine_dir = self.root / "quarantine"
        self.result_store = ResultStore(self.root / "results")
        self._config: SweepConfig | None = None
        self._payload_config = None
        self._payload_config_loaded = False

    # -- creation / identity -------------------------------------------
    @classmethod
    def create(
        cls,
        root: Path | str,
        config: SweepConfig | None = None,
        payload_config=None,
        description: str = "",
    ) -> "Sweep":
        sweep = cls(root)
        sweep.root.mkdir(parents=True, exist_ok=True)
        for sub in (
            sweep.tasks_dir,
            sweep.leases_dir,
            sweep.attempts_dir,
            sweep.done_dir,
            sweep.quarantine_dir,
        ):
            sub.mkdir(parents=True, exist_ok=True)
        config = config or SweepConfig()
        doc = {
            "sweep_id": uuid.uuid4().hex[:12],
            "created": time.time(),
            "description": description,
            "config": dataclasses.asdict(config),
        }
        if not exclusive_create(
            sweep.root / "sweep.json", json.dumps(doc, sort_keys=True).encode()
        ):
            raise FileExistsError(f"sweep already exists at {sweep.root}")
        if payload_config is not None:
            with open(sweep.root / "config.pkl", "wb") as fh:
                pickle.dump(payload_config, fh)
        sweep._config = config
        return sweep

    @classmethod
    def open(cls, root: Path | str) -> "Sweep":
        sweep = cls(root)
        if sweep.manifest() is None:
            raise FileNotFoundError(f"no sweep at {sweep.root}")
        return sweep

    def manifest(self) -> dict | None:
        return read_json(self.root / "sweep.json")

    @property
    def config(self) -> SweepConfig:
        if self._config is None:
            doc = self.manifest() or {}
            self._config = SweepConfig(**doc.get("config", {}))
        return self._config

    def load_config(self):
        """The pickled experiment config (e.g. ExperimentScale)."""
        if not self._payload_config_loaded:
            path = self.root / "config.pkl"
            if path.exists():
                with open(path, "rb") as fh:
                    self._payload_config = pickle.load(fh)
            self._payload_config_loaded = True
        return self._payload_config

    # -- enqueue -------------------------------------------------------
    def add_tasks(self, specs: list[TaskSpec], dedupe: bool = False) -> int:
        """Write task files; with ``dedupe``, specs whose fingerprint is
        already enqueued are skipped (grid sweeps collapse duplicate
        configurations). Returns the number of tasks added."""
        seen: set[str] = set()
        if dedupe:
            for spec in self.tasks():
                seen.add(spec.fingerprint)
        added = 0
        for spec in specs:
            if dedupe and spec.fingerprint in seen:
                continue
            seen.add(spec.fingerprint)
            atomic_write_json(self.tasks_dir / f"{spec.task_id}.json", spec.to_json())
            added += 1
        return added

    def add_call_tasks(self, fn, items) -> list[TaskSpec]:
        """Enqueue ``fn(item)`` tasks (the ``parallel_map`` decomposition).

        The payload is pickled per task; the fingerprint covers the
        payload bytes *and* the index so duplicate items stay distinct
        tasks with distinct results.
        """
        specs: list[TaskSpec] = []
        for index, item in enumerate(items):
            payload = pickle.dumps((fn, item), protocol=pickle.HIGHEST_PROTOCOL)
            task_id = f"t{index:05d}"
            fp = hashlib.sha256(payload + f"|{index}".encode()).hexdigest()[:16]
            spec = TaskSpec(
                task_id=task_id,
                index=index,
                kind="call",
                fingerprint=fp,
                params={},
            )
            with open(self.tasks_dir / f"{task_id}.payload.pkl", "wb") as fh:
                fh.write(payload)
            specs.append(spec)
        self.add_tasks(specs)
        return specs

    def load_payload(self, spec: TaskSpec):
        with open(self.tasks_dir / f"{spec.task_id}.payload.pkl", "rb") as fh:
            return pickle.load(fh)

    # -- inspection ----------------------------------------------------
    def tasks(self) -> list[TaskSpec]:
        specs = []
        for path in sorted(self.tasks_dir.glob("t*.json")):
            doc = read_json(path)
            if doc is not None:
                specs.append(TaskSpec.from_json(doc))
        return sorted(specs, key=lambda s: s.index)

    def _lease_path(self, task_id: str) -> Path:
        return self.leases_dir / f"{task_id}.lease"

    def _attempts_path(self, task_id: str) -> Path:
        return self.attempts_dir / f"{task_id}.json"

    def _done_path(self, task_id: str) -> Path:
        return self.done_dir / f"{task_id}.json"

    def _quarantine_path(self, task_id: str) -> Path:
        return self.quarantine_dir / f"{task_id}.json"

    def is_done(self, task_id: str) -> bool:
        return self._done_path(task_id).exists()

    def is_quarantined(self, task_id: str) -> bool:
        return self._quarantine_path(task_id).exists()

    def attempts(self, task_id: str) -> dict:
        return read_json(self._attempts_path(task_id)) or {
            "error_attempts": 0,
            "reclaims": 0,
            "next_retry_at": 0.0,
            "last_error": "",
        }

    def status(self, now: float | None = None) -> SweepStatus:
        now = time.time() if now is None else now
        status = SweepStatus()
        lease = self.config.lease_seconds
        for spec in self.tasks():
            status.total += 1
            attempts = self.attempts(spec.task_id)
            status.reclaims += int(attempts.get("reclaims", 0))
            if self.is_done(spec.task_id):
                status.done += 1
            elif self.is_quarantined(spec.task_id):
                status.quarantined += 1
            elif self._lease_alive(spec.task_id, lease, now):
                status.claimed += 1
            elif float(attempts.get("next_retry_at", 0.0)) > now:
                status.retry_wait += 1
            else:
                status.pending += 1
        return status

    def _lease_alive(self, task_id: str, lease_seconds: float, now: float) -> bool:
        try:
            mtime = self._lease_path(task_id).stat().st_mtime
        except OSError:
            return False
        return now - mtime <= lease_seconds

    # -- quarantine ----------------------------------------------------
    def quarantine(
        self, spec: TaskSpec, reason: str, tb_text: str, attempts: dict
    ) -> None:
        tb_path = self.quarantine_dir / f"{spec.task_id}.traceback.txt"
        tb_path.parent.mkdir(parents=True, exist_ok=True)
        tb_path.write_text(tb_text)
        atomic_write_json(
            self._quarantine_path(spec.task_id),
            {
                "task_id": spec.task_id,
                "index": spec.index,
                "kind": spec.kind,
                "fingerprint": spec.fingerprint,
                "reason": reason,
                "error_attempts": int(attempts.get("error_attempts", 0)),
                "reclaims": int(attempts.get("reclaims", 0)),
                "last_error": attempts.get("last_error", ""),
                "traceback_file": tb_path.name,
                "quarantined_at": time.time(),
            },
        )

    def quarantine_record(self, task_id: str) -> dict | None:
        return read_json(self._quarantine_path(task_id))

    # -- results -------------------------------------------------------
    def load_result(self, spec: TaskSpec):
        """The stored result of a done task (``None`` if missing)."""
        wrapped = self.result_store.load("task", spec.fingerprint)
        if wrapped is None:
            return None
        return wrapped.get("value")

    def collect(self):
        """``(results_by_index, failures)`` for a terminal sweep."""
        results: dict[int, object] = {}
        failures: list[dict] = []
        for spec in self.tasks():
            if self.is_done(spec.task_id):
                wrapped = self.result_store.load("task", spec.fingerprint)
                if wrapped is not None:
                    results[spec.index] = wrapped.get("value")
                    continue
                # done marker without a loadable result: the store entry
                # was corrupt and got quarantined by load() — surface it
                failures.append(
                    {
                        "task_id": spec.task_id,
                        "index": spec.index,
                        "reason": "result-unreadable",
                        "last_error": "stored result missing or corrupt",
                        "traceback": "",
                    }
                )
            elif self.is_quarantined(spec.task_id):
                record = self.quarantine_record(spec.task_id) or {}
                tb_file = record.get("traceback_file")
                tb_text = ""
                if tb_file:
                    try:
                        tb_text = (self.quarantine_dir / tb_file).read_text()
                    except OSError:
                        pass
                failures.append(
                    {
                        "task_id": spec.task_id,
                        "index": spec.index,
                        "reason": record.get("reason", "quarantined"),
                        "last_error": record.get("last_error", ""),
                        "reclaims": record.get("reclaims", 0),
                        "error_attempts": record.get("error_attempts", 0),
                        "traceback": tb_text,
                    }
                )
        return results, failures


# ----------------------------------------------------------------------
class _Heartbeat(threading.Thread):
    """Renews one lease until stopped; flags the lease as lost when the
    file vanished or carries someone else's token (the task was
    reclaimed while we were frozen)."""

    def __init__(self, lease_path: Path, token: str, interval: float):
        super().__init__(daemon=True, name=f"heartbeat-{lease_path.stem}")
        self.lease_path = lease_path
        self.token = token
        self.interval = interval
        self.stop_event = threading.Event()
        self.lost = threading.Event()
        self.renewals = 0

    def run(self) -> None:
        while not self.stop_event.wait(self.interval):
            try:
                _fire("runner.heartbeat")
                doc = read_json(self.lease_path)
                if doc is None or doc.get("token") != self.token:
                    self.lost.set()
                    return
                os.utime(self.lease_path)
                self.renewals += 1
            except OSError:
                self.lost.set()
                return
            except Exception:
                # injected error: skip this beat, keep trying — a lease
                # missing several beats simply expires
                continue

    def stop(self) -> None:
        self.stop_event.set()


class Runner:
    """One worker process's claim/execute/complete loop over a sweep."""

    def __init__(
        self,
        sweep: Sweep,
        runner_id: str | None = None,
        poll_interval: float = 0.05,
        max_tasks: int | None = None,
    ):
        self.sweep = sweep
        self.runner_id = runner_id or f"runner-{os.getpid()}"
        self.poll_interval = poll_interval
        self.max_tasks = max_tasks
        self.completed = 0
        self.failed = 0
        self.reclaimed = 0
        #: task specs are immutable once enqueued; cache the scan so a
        #: claim pass costs file-existence checks, not a JSON re-parse
        #: of every task
        self._specs: list[TaskSpec] | None = None

    # -- claim protocol ------------------------------------------------
    def _try_reclaim(self, spec: TaskSpec, now: float) -> bool:
        """Take over an expired lease; True when this runner won.

        ``os.rename`` of the expired lease is the election: exactly one
        renamer succeeds, every other reclaimer gets FileNotFoundError.
        """
        lease_path = self.sweep._lease_path(spec.task_id)
        try:
            mtime = lease_path.stat().st_mtime
        except OSError:
            return True  # lease vanished — holder released it; claimable
        if now - mtime <= self.sweep.config.lease_seconds:
            return False  # live lease
        tombstone = lease_path.with_suffix(
            f".reclaimed.{os.getpid()}.{uuid.uuid4().hex[:6]}"
        )
        try:
            os.rename(lease_path, tombstone)
        except OSError:
            return False  # another reclaimer won the election
        try:
            tombstone.unlink()
        except OSError:
            pass
        attempts = self.sweep.attempts(spec.task_id)
        attempts["reclaims"] = int(attempts.get("reclaims", 0)) + 1
        atomic_write_json(self.sweep._attempts_path(spec.task_id), attempts)
        self.reclaimed += 1
        if attempts["reclaims"] > self.sweep.config.max_reclaims:
            self.sweep.quarantine(
                spec,
                reason="crash-poison: lease expired too often",
                tb_text=(
                    f"task {spec.task_id} lost its lease "
                    f"{attempts['reclaims']} times (> max_reclaims="
                    f"{self.sweep.config.max_reclaims}); the task keeps "
                    "killing or freezing its runners"
                ),
                attempts=attempts,
            )
            return False
        return True

    def claim(self) -> tuple[TaskSpec, str] | None:
        """Claim one runnable task; ``(spec, lease_token)`` or None."""
        _fire("task.claim")
        now = time.time()
        if self._specs is None:
            self._specs = self.sweep.tasks()
        for spec in self._specs:
            if self.sweep.is_done(spec.task_id) or self.sweep.is_quarantined(
                spec.task_id
            ):
                continue
            lease_path = self.sweep._lease_path(spec.task_id)
            if lease_path.exists() and not self._try_reclaim(spec, now):
                continue
            if self.sweep.is_quarantined(spec.task_id):
                continue  # _try_reclaim crossed the reclaim bound
            attempts = self.sweep.attempts(spec.task_id)
            if float(attempts.get("next_retry_at", 0.0)) > now:
                continue
            token = uuid.uuid4().hex
            claim_doc = {
                "token": token,
                "runner": self.runner_id,
                "claimed_at": now,
                "pid": os.getpid(),
            }
            if exclusive_create(
                lease_path, json.dumps(claim_doc, sort_keys=True).encode()
            ):
                return spec, token
        return None

    def _release(self, task_id: str, token: str) -> bool:
        """Unlink the lease iff we still hold it (token check guards
        against unlinking a reclaimer's fresh lease)."""
        lease_path = self.sweep._lease_path(task_id)
        doc = read_json(lease_path)
        if doc is None or doc.get("token") != token:
            return False
        try:
            lease_path.unlink()
        except OSError:
            return False
        return True

    # -- execution -----------------------------------------------------
    def _store_result(self, spec: TaskSpec, result) -> None:
        _fire("store.write")
        self.sweep.result_store.store(
            "task",
            spec.fingerprint,
            {"task_id": spec.task_id, "value": result},
            description=f"{spec.kind} task {spec.task_id}",
        )

    def execute(self, spec: TaskSpec, token: str) -> bool:
        """Run one claimed task to a terminal or retryable state."""
        config = self.sweep.config
        heartbeat = _Heartbeat(
            self.sweep._lease_path(spec.task_id), token, config.heartbeat_seconds
        )
        heartbeat.start()
        started = time.time()
        try:
            _fire("runner.task")
            kind_fn = _TASK_KINDS.get(spec.kind)
            if kind_fn is None:
                raise RunnerCrashed(f"unknown task kind {spec.kind!r}")
            result = kind_fn(self.sweep, spec)
            self._store_result(spec, result)
        except Exception as exc:
            heartbeat.stop()
            self._record_failure(spec, exc)
            self._release(spec.task_id, token)
            self.failed += 1
            return False
        # BaseException (WorkerCrash / KeyboardInterrupt) propagates:
        # the lease is deliberately NOT released — that is the crash
        # path peers must recover via expiry
        heartbeat.stop()
        attempts = self.sweep.attempts(spec.task_id)
        atomic_write_json(
            self.sweep._done_path(spec.task_id),
            {
                "task_id": spec.task_id,
                "index": spec.index,
                "fingerprint": spec.fingerprint,
                "runner": self.runner_id,
                "elapsed_s": time.time() - started,
                "error_attempts": int(attempts.get("error_attempts", 0)),
                "reclaims": int(attempts.get("reclaims", 0)),
                "late_write": heartbeat.lost.is_set(),
                "finished_at": time.time(),
            },
        )
        self._release(spec.task_id, token)
        self.completed += 1
        return True

    def _record_failure(self, spec: TaskSpec, exc: Exception) -> None:
        attempts = self.sweep.attempts(spec.task_id)
        attempts["error_attempts"] = int(attempts.get("error_attempts", 0)) + 1
        attempts["last_error"] = f"{type(exc).__name__}: {exc}"
        tb_text = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
        if attempts["error_attempts"] >= self.sweep.config.max_attempts:
            atomic_write_json(self.sweep._attempts_path(spec.task_id), attempts)
            self.sweep.quarantine(
                spec,
                reason=f"poison: failed {attempts['error_attempts']} attempts",
                tb_text=tb_text,
                attempts=attempts,
            )
            return
        attempts["next_retry_at"] = time.time() + self.sweep.config.backoff(
            attempts["error_attempts"]
        )
        atomic_write_json(self.sweep._attempts_path(spec.task_id), attempts)

    # -- loop ----------------------------------------------------------
    def run(self) -> SweepStatus:
        """Claim and execute until the sweep is terminal (or
        ``max_tasks`` tasks were executed by this runner)."""
        while True:
            if self.max_tasks is not None and (
                self.completed + self.failed
            ) >= self.max_tasks:
                break
            try:
                claimed = self.claim()
            except Exception:
                # injected claim error / transient FS trouble: back off
                time.sleep(self.poll_interval)
                continue
            if claimed is not None:
                self.execute(*claimed)
                continue
            status = self.sweep.status()
            if status.terminal:
                break
            time.sleep(self.poll_interval)
        return self.sweep.status()


# ----------------------------------------------------------------------
def _runner_process_main(
    root: str, runner_id: str, fault_spec: str, max_tasks: int | None
) -> None:
    """Child-process entry: run one Runner to sweep completion.

    A :class:`~repro.serve.faults.WorkerCrash` (injected) exits via
    ``os._exit`` — no lease release, no atexit, exactly like an OOM
    kill; the sweep recovers through lease expiry.
    """
    from repro.serve import faults

    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the driver tears down
    if fault_spec:
        faults.install(fault_spec)
    else:
        faults.install_from_env()
    sweep = Sweep.open(root)
    runner = Runner(sweep, runner_id=runner_id, max_tasks=max_tasks)
    try:
        runner.run()
    except faults.WorkerCrash:
        os._exit(23)
    except KeyboardInterrupt:
        os._exit(130)
    os._exit(0)


@dataclass
class ChaosPlan:
    """Driver-side runner killing for the chaos harness.

    ``kills`` runners are SIGKILLed, each only once it holds a live
    lease (so every kill provably orphans a task for lease-expiry
    reclaim), at least ``min_interval_s`` apart. ``fault_spec`` arms
    the in-process fault sites in every runner.
    """

    kills: int = 1
    min_interval_s: float = 0.15
    fault_spec: str = ""


@dataclass
class SweepReport:
    total: int
    done: int
    quarantined: int
    reclaims: int
    respawns: int
    kills: int
    elapsed_s: float
    runner_exits: list[int] = field(default_factory=list)

    @property
    def lost(self) -> int:
        return self.total - self.done - self.quarantined

    def to_json(self) -> dict:
        return {
            "total": self.total,
            "done": self.done,
            "quarantined": self.quarantined,
            "lost": self.lost,
            "reclaims": self.reclaims,
            "respawns": self.respawns,
            "kills": self.kills,
            "elapsed_s": round(self.elapsed_s, 3),
            "runner_exits": self.runner_exits,
        }


def _spawn_runner(ctx, sweep: Sweep, index: int, chaos_spec: str, max_tasks):
    proc = ctx.Process(
        target=_runner_process_main,
        args=(str(sweep.root), f"runner-{index}", chaos_spec, max_tasks),
        daemon=False,
    )
    proc.start()
    return proc


def _victim_with_lease(sweep: Sweep, procs: dict) -> int | None:
    """A live runner index currently holding a lease (to make a chaos
    kill provably orphan a task)."""
    holders = set()
    for lease in sweep.leases_dir.glob("*.lease"):
        doc = read_json(lease)
        if doc:
            holders.add(doc.get("runner"))
    for index, proc in procs.items():
        if proc.is_alive() and f"runner-{index}" in holders:
            return index
    return None


def run_sweep_local(
    sweep: Sweep,
    n_runners: int,
    chaos: ChaosPlan | None = None,
    max_respawns: int | None = None,
    max_tasks_per_runner: int | None = None,
    poll_interval: float = 0.05,
    timeout: float | None = None,
) -> SweepReport:
    """Drive a sweep with ``n_runners`` local runner processes.

    The driver supervises: dead runners (crashed, chaos-killed, or
    injected ``os._exit``) are respawned while work remains, so the
    sweep always reaches a terminal state — every task done or
    quarantined — unless ``timeout`` expires first. On KeyboardInterrupt
    the runners are terminated and reaped before the exception
    propagates (no orphan processes, no hung driver).
    """
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    chaos_spec = chaos.fault_spec if chaos else ""
    if max_respawns is None:
        max_respawns = 4 + 2 * n_runners + (chaos.kills if chaos else 0)
    started = time.time()
    procs: dict[int, object] = {}
    exits: list[int] = []
    respawns = 0
    kills_done = 0
    last_kill_at = 0.0
    next_index = 0
    try:
        for _ in range(n_runners):
            procs[next_index] = _spawn_runner(
                ctx, sweep, next_index, chaos_spec, max_tasks_per_runner
            )
            next_index += 1
        while True:
            status = sweep.status()
            if status.terminal:
                break
            now = time.time()
            if timeout is not None and now - started > timeout:
                raise TimeoutError(
                    f"sweep did not terminate in {timeout}s: "
                    f"{status.to_json()}"
                )
            # chaos: kill a lease-holding runner, at most every interval
            if (
                chaos is not None
                and kills_done < chaos.kills
                and now - last_kill_at >= chaos.min_interval_s
            ):
                victim = _victim_with_lease(sweep, procs)
                if victim is not None:
                    os.kill(procs[victim].pid, signal.SIGKILL)
                    kills_done += 1
                    last_kill_at = now
            # reap + respawn
            for index, proc in list(procs.items()):
                if proc.is_alive():
                    continue
                proc.join()
                exits.append(proc.exitcode)
                del procs[index]
                if respawns < max_respawns:
                    procs[next_index] = _spawn_runner(
                        ctx, sweep, next_index, chaos_spec, max_tasks_per_runner
                    )
                    next_index += 1
                    respawns += 1
            if not procs:
                # respawn budget exhausted with work remaining
                status = sweep.status()
                if status.terminal:
                    break
                raise RuntimeError(
                    f"all runners exited with work remaining: "
                    f"{status.to_json()} (respawns={respawns})"
                )
            time.sleep(poll_interval)
    finally:
        deadline = time.time() + 10.0
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in procs.values():
            proc.join(timeout=max(0.1, deadline - time.time()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
            if proc.exitcode is not None:
                exits.append(proc.exitcode)
    status = sweep.status()
    return SweepReport(
        total=status.total,
        done=status.done,
        quarantined=status.quarantined,
        reclaims=status.reclaims,
        respawns=respawns,
        kills=kills_done,
        elapsed_s=time.time() - started,
        runner_exits=exits,
    )


# ----------------------------------------------------------------------
# experiment sweep decompositions + deterministic merges. The merge
# stores its aggregate under the exact fingerprint the serial driver
# uses, so a distributed sweep warms the same cache entry run_folds /
# run_ablation would have written.
def demo_sweep_tasks(
    n: int,
    size: int = 50_000,
    reps: int = 60,
    sleep_s: float = 0.0,
    seed: int = 0,
) -> list[TaskSpec]:
    specs = []
    for index in range(n):
        params = {
            "seed": seed + index,
            "size": size,
            "reps": reps,
            "sleep_s": sleep_s,
        }
        specs.append(
            TaskSpec(
                task_id=f"t{index:05d}",
                index=index,
                kind="demo",
                fingerprint=fingerprint("demotask", params),
                params=params,
            )
        )
    return specs


def folds_sweep_tasks(scale) -> list[TaskSpec]:
    from repro.eval import experiments as ex
    from repro.eval.folds import leave_one_out_folds
    from repro.eval.samples import training_placements

    specs = []
    folds = leave_one_out_folds(scale.datasets, scale.n_folds)
    for index, (test_dataset, train_datasets) in enumerate(folds):
        fp = fingerprint(
            "foldtask",
            ex._normalized_scale(scale),
            ex._gnn_config(scale),
            ex._train_config(scale),
            training_placements(),
            test_dataset,
            train_datasets,
        )
        specs.append(
            TaskSpec(
                task_id=f"t{index:05d}",
                index=index,
                kind="fold",
                fingerprint=fp,
                params={
                    "test_dataset": test_dataset,
                    "train_datasets": list(train_datasets),
                },
            )
        )
    return specs


def merge_folds(sweep: Sweep, scale) -> list:
    """Assemble fold results in fold order and store the aggregate under
    the serial driver's fingerprint (``folds``/:func:`folds_fingerprint`)."""
    from repro.eval import experiments as ex
    from repro.eval.resultstore import default_store

    results, failures = sweep.collect()
    if failures:
        raise RunnerCrashed(
            f"{len(failures)} fold task(s) quarantined; first: "
            f"{failures[0]['last_error'] or failures[0]['reason']}"
        )
    runs = [results[index] for index in sorted(results)]
    default_store().store(
        "folds",
        ex.folds_fingerprint(scale),
        runs,
        description=f"fold runs (distributed sweep {sweep.manifest()['sweep_id']})",
    )
    return runs


def ablation_sweep_tasks(scale, test_dataset: str | None = None) -> list[TaskSpec]:
    from repro.eval import experiments as ex

    if test_dataset is None:
        test_dataset = "genome" if "genome" in scale.datasets else scale.datasets[-1]
    n_seeds = max(1, scale.n_ablation_seeds)
    specs = []
    index = 0
    for step_index, (step, config) in enumerate(ex.ABLATION_STEPS):
        for seed_offset in range(n_seeds):
            fp = fingerprint(
                "ablationtask",
                ex._normalized_scale(scale),
                ex._gnn_config(scale),
                ex._train_config(scale),
                test_dataset,
                step,
                config,
                seed_offset,
            )
            specs.append(
                TaskSpec(
                    task_id=f"t{index:05d}",
                    index=index,
                    kind="ablation",
                    fingerprint=fp,
                    params={
                        "test_dataset": test_dataset,
                        "step_index": step_index,
                        "seed_offset": seed_offset,
                    },
                )
            )
            index += 1
    return specs


def merge_ablation(sweep: Sweep, scale, test_dataset: str | None = None) -> dict:
    from repro.eval import experiments as ex
    from repro.eval.resultstore import default_store

    if test_dataset is None:
        test_dataset = "genome" if "genome" in scale.datasets else scale.datasets[-1]
    results, failures = sweep.collect()
    if failures:
        raise RunnerCrashed(
            f"{len(failures)} ablation task(s) quarantined; first: "
            f"{failures[0]['last_error'] or failures[0]['reason']}"
        )
    n_seeds = max(1, scale.n_ablation_seeds)
    summaries = [results[index] for index in sorted(results)]
    merged: dict[str, dict] = {}
    for i, (step, _) in enumerate(ex.ABLATION_STEPS):
        merged[step] = ex._median_over_seeds(summaries[i * n_seeds : (i + 1) * n_seeds])
    default_store().store(
        "ablation",
        ex.ablation_fingerprint(scale, test_dataset),
        merged,
        description=(
            f"Fig. 7 ablation on {test_dataset} "
            f"(distributed sweep {sweep.manifest()['sweep_id']})"
        ),
    )
    return merged
