"""Config-fingerprinted experiment result store (DESIGN.md §7).

Every on-disk experiment artifact — built dataset benchmarks, prepared
samples, fold/ablation/select-only results — lives in one store keyed by
a *fingerprint*: a SHA-256 hash over the canonically serialized tuple of
everything that affects the artifact's content (scale knobs, graph
ablation switches, GNN/training configs including dtype, estimator
names, placements, ...) plus a single :data:`SCHEMA_VERSION`.

The fingerprint discipline replaces the hand-maintained cache keys that
once let results computed under old code stay "hot" after the code
changed (the stale Fig. 7 failure): there are no historical-key
exceptions — change any config knob or bump ``SCHEMA_VERSION`` and the
old entry simply becomes unreachable. The store also provides:

* **atomic writes** — pickle to a per-process temp file, then
  ``os.replace``; a killed run never leaves a truncated entry behind;
* **quarantine** — a corrupt or truncated entry is deleted on the first
  failed load and recomputed, instead of re-crashing every later run;
* **manifest** — a ``manifest.json`` plus per-entry ``.meta.json``
  sidecars so ``scripts/cache.py`` can list/inspect/clear entries
  without unpickling anything;
* **stats()/gc(max_bytes)** — store-wide accounting and
  least-recently-used eviction (loads bump the entry mtime).

The store is also the substrate of the distributed experiment runner
(:mod:`repro.eval.runner`, DESIGN.md §16): runner processes — possibly
on separate hosts sharing the store directory — exchange results purely
through fingerprinted entries, and the claim/lease protocol is built on
the low-level file primitives exported here (:func:`exclusive_create`,
:func:`atomic_write_json`, :func:`read_json`).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import re
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

#: Bump when *any* code change invalidates previously computed artifacts
#: (sample semantics, benchmark generation, result record layout, ...).
#: This is the only version knob: individual kinds never keep
#: hand-maintained historical keys.
SCHEMA_VERSION = 3

_KIND_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def cache_dir() -> Path:
    """Store root: ``$REPRO_CACHE_DIR`` or ``<repo>/.bench_cache``."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path(__file__).resolve().parents[3] / ".bench_cache"


def registry_dir() -> Path:
    """Model-registry root: ``$REPRO_REGISTRY_DIR`` or ``<repo>/.model_registry``.

    Unlike :func:`cache_dir` this is *not* a cache: published model
    versions are durable serving artifacts and are never GC'd by
    :meth:`ResultStore.gc`. It lives here because both roots follow the
    same env-override discipline (tests redirect them per-process).
    """
    root = os.environ.get("REPRO_REGISTRY_DIR")
    if root:
        return Path(root)
    return Path(__file__).resolve().parents[3] / ".model_registry"


def feedback_dir() -> Path:
    """Feedback-log root: ``$REPRO_FEEDBACK_DIR`` or ``<repo>/.feedback_log``.

    The replay buffer of :mod:`repro.feedback` — like the registry it is
    durable serving state (never GC'd by :meth:`ResultStore.gc`), bounded
    instead by the log's own chunk rotation.
    """
    root = os.environ.get("REPRO_FEEDBACK_DIR")
    if root:
        return Path(root)
    return Path(__file__).resolve().parents[3] / ".feedback_log"


# ----------------------------------------------------------------------
def canonical(obj):
    """A stable, hashable-by-repr form of an arbitrary config value.

    Dataclasses serialize as (qualified class name, sorted field items)
    so renaming or reordering fields changes the fingerprint while the
    same config always maps to the same form, process after process.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, float):
        return ("f", repr(float(obj)))  # float(): np.float64 reprs differ
    if isinstance(obj, enum.Enum):
        return ("enum", type(obj).__name__, obj.name)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        items = tuple(
            (f.name, canonical(getattr(obj, f.name)))
            for f in dataclasses.fields(obj)
        )
        cls = type(obj)
        return ("dc", f"{cls.__module__}.{cls.__qualname__}", items)
    if isinstance(obj, np.ndarray):
        return ("nd", obj.dtype.str, obj.shape, obj.tobytes())
    if isinstance(obj, np.generic):
        return canonical(obj.item())
    if isinstance(obj, (tuple, list)):
        return ("seq", tuple(canonical(v) for v in obj))
    if isinstance(obj, dict):
        items = sorted((repr(canonical(k)), canonical(v)) for k, v in obj.items())
        return ("map", tuple(items))
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(canonical(v)) for v in obj)))
    if isinstance(obj, Path):
        return ("path", str(obj))
    if isinstance(obj, type):
        return ("type", f"{obj.__module__}.{obj.__qualname__}")
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!r} values; "
        "pass dataclasses, containers, or primitives"
    )


def fingerprint(*parts) -> str:
    """SHA-256 over the canonical serialized parts + SCHEMA_VERSION."""
    payload = repr(("schema", SCHEMA_VERSION, canonical(tuple(parts))))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# low-level file primitives shared with the distributed runner: every
# cross-process handshake in this repo is either an O_EXCL claim (one
# winner) or an atomic temp-file + os.replace publish (torn writes are
# invisible), so the two idioms live here, next to the store they guard
def exclusive_create(path: Path, data: bytes) -> bool:
    """Create ``path`` with ``O_EXCL`` holding ``data``; False if it
    already exists (some other process won the claim)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    try:
        os.write(fd, data)
    finally:
        os.close(fd)
    return True


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Publish ``data`` at ``path`` via temp file + ``os.replace``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    with open(tmp, "wb") as fh:
        fh.write(data)
    os.replace(tmp, path)


def atomic_write_json(path: Path, obj) -> None:
    atomic_write_bytes(path, json.dumps(obj, sort_keys=True).encode("utf-8"))


def read_json(path: Path):
    """Parse a JSON file; ``None`` when missing, truncated, or torn —
    concurrent readers must treat a vanishing sidecar as absent, never
    as an error."""
    try:
        with open(path, "rb") as fh:
            return json.loads(fh.read().decode("utf-8"))
    except (OSError, ValueError):
        return None


def _tmp_writer_pid(name: str) -> int | None:
    """The pid encoded in a ``.tmp<pid>``/``.metatmp<pid>`` suffix."""
    digits = name.rpartition("tmp")[2]
    if digits.isdigit():
        return int(digits)
    return None


def _pid_alive(pid: int) -> bool:
    """Is ``pid`` a live process on this host? (Permission errors mean
    the process exists but belongs to someone else — alive.)"""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


# ----------------------------------------------------------------------
@dataclass
class StoreEntry:
    """One stored artifact, described without unpickling it."""

    kind: str
    fingerprint: str
    path: Path
    bytes: int
    created: float
    last_used: float
    description: str = ""

    @property
    def name(self) -> str:
        return self.path.name


class ResultStore:
    """Content-addressed pickle store under one root directory."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else cache_dir()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    # -- keys ----------------------------------------------------------
    @staticmethod
    def fingerprint(*parts) -> str:
        return fingerprint(*parts)

    def path(self, kind: str, fp: str) -> Path:
        if not _KIND_RE.match(kind):
            raise ValueError(f"invalid store kind {kind!r}")
        return self.root / f"{kind}_{fp}.pkl"

    @staticmethod
    def _meta_path(path: Path) -> Path:
        return path.with_suffix(".meta.json")

    # -- load/store ----------------------------------------------------
    def load(self, kind: str, fp: str):
        """Unpickle an entry, or None. Corrupt entries are quarantined:
        deleted on the first failed load so the next run recomputes
        instead of crashing on the same truncated file forever."""
        path = self.path(kind, fp)
        try:
            with open(path, "rb") as fh:
                obj = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (MemoryError, RecursionError):
            # resource exhaustion, not corruption — the entry may be
            # perfectly valid (and expensive); never quarantine it
            raise
        except Exception:
            # EOFError/UnpicklingError on truncation, AttributeError/
            # ImportError on renamed classes, ValueError on bad
            # protocols, OSError on IO trouble — all mean the entry is
            # unusable; drop it and its sidecar.
            self.quarantined += 1
            self.misses += 1
            self._unlink(path)
            return None
        self.hits += 1
        try:
            os.utime(path)  # LRU signal for gc()
        except OSError:
            pass
        return obj

    def store(self, kind: str, fp: str, obj, description: str = "") -> Path:
        path = self.path(kind, fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(obj, fh)
        os.replace(tmp, path)
        meta = {
            "kind": kind,
            "fingerprint": fp,
            "schema_version": SCHEMA_VERSION,
            "created": time.time(),
            "description": description,
        }
        meta_tmp = path.with_suffix(f".metatmp{os.getpid()}")
        with open(meta_tmp, "w") as fh:
            json.dump(meta, fh)
        os.replace(meta_tmp, self._meta_path(path))
        # manifest.json is rebuilt lazily (stats/gc/clear/scripts) —
        # regenerating it per store() would rescan the directory on
        # every write, O(N^2) across a warm-up that stores N entries
        return path

    def get_or_compute(
        self,
        kind: str,
        fp: str,
        compute,
        use_cache: bool = True,
        description: str = "",
    ):
        """Load the entry, or compute + store it (the one cache idiom)."""
        if use_cache:
            cached = self.load(kind, fp)
            if cached is not None:
                return cached
        obj = compute()
        if use_cache:
            self.store(kind, fp, obj, description=description)
        return obj

    def _unlink(self, path: Path) -> None:
        for p in (path, self._meta_path(path)):
            try:
                p.unlink()
            except OSError:
                pass

    # -- inspection ----------------------------------------------------
    def entries(self) -> list[StoreEntry]:
        out: list[StoreEntry] = []
        if not self.root.is_dir():
            return out
        for path in sorted(self.root.glob("*.pkl")):
            kind, _, fp = path.stem.rpartition("_")
            meta = {}
            try:
                with open(self._meta_path(path)) as fh:
                    meta = json.load(fh)
            except (OSError, json.JSONDecodeError):
                pass
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append(
                StoreEntry(
                    kind=meta.get("kind", kind or path.stem),
                    fingerprint=meta.get("fingerprint", fp),
                    path=path,
                    bytes=stat.st_size,
                    created=float(meta.get("created", stat.st_mtime)),
                    last_used=stat.st_mtime,
                    description=meta.get("description", ""),
                )
            )
        return out

    def stats(self) -> dict:
        entries = self.entries()
        self.write_manifest()
        per_kind: dict[str, dict] = {}
        for entry in entries:
            bucket = per_kind.setdefault(entry.kind, {"count": 0, "bytes": 0})
            bucket["count"] += 1
            bucket["bytes"] += entry.bytes
        return {
            "root": str(self.root),
            "schema_version": SCHEMA_VERSION,
            "entries": len(entries),
            "bytes": sum(e.bytes for e in entries),
            "kinds": per_kind,
            "hits": self.hits,
            "misses": self.misses,
            "quarantined": self.quarantined,
        }

    def write_manifest(self) -> Path:
        """Aggregate the sidecars into ``manifest.json`` (atomic)."""
        manifest = {
            "schema_version": SCHEMA_VERSION,
            "generated": time.time(),
            "entries": [
                {
                    "file": e.name,
                    "kind": e.kind,
                    "fingerprint": e.fingerprint,
                    "bytes": e.bytes,
                    "created": e.created,
                    "description": e.description,
                }
                for e in self.entries()
            ],
        }
        path = self.root / "manifest.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        with open(tmp, "w") as fh:
            json.dump(manifest, fh, indent=1)
        os.replace(tmp, path)
        return path

    # -- maintenance ---------------------------------------------------
    #: a temp file whose writer is still alive is only swept past this
    #: age — a wedged writer, not an in-flight store()
    WEDGED_WRITER_SECONDS = 3600.0

    def _sweep_stale_tmp(self, max_age_seconds: float = 3600.0) -> int:
        """Delete orphaned temp files from killed runs.

        The temp suffix encodes the writer's pid, so liveness decides:
        a *live* writer's file is never removed before
        :data:`WEDGED_WRITER_SECONDS` no matter how aggressive the
        sweep (``clear()`` passes ``max_age_seconds=0``), while a dead
        writer's orphan goes once it is older than ``max_age_seconds``.
        (Pid liveness is a same-host signal; on a store shared across
        hosts the age bound is the only guard, which is why the default
        stays a conservative hour.)
        """
        if not self.root.is_dir():
            return 0
        now = time.time()
        removed = 0
        for path in self.root.iterdir():
            if ".tmp" not in path.suffix and ".metatmp" not in path.suffix:
                continue
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # deleted by a concurrent sweep — already gone
            pid = _tmp_writer_pid(path.suffix)
            if pid is not None and _pid_alive(pid):
                if age <= self.WEDGED_WRITER_SECONDS:
                    continue  # another live process's in-progress write
            elif age <= max_age_seconds:
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def gc(self, max_bytes: int) -> dict:
        """Evict least-recently-used entries until total <= max_bytes."""
        self._sweep_stale_tmp()
        entries = sorted(self.entries(), key=lambda e: e.last_used)
        total = sum(e.bytes for e in entries)
        evicted: list[str] = []
        freed = 0
        for entry in entries:
            if total - freed <= max_bytes:
                break
            self._unlink(entry.path)
            evicted.append(entry.name)
            freed += entry.bytes
        if evicted:
            self.write_manifest()
        return {"evicted": evicted, "freed_bytes": freed,
                "remaining_bytes": total - freed}

    def clear(self, kind: str | None = None) -> int:
        """Delete all entries (of one kind, if given); returns count."""
        self._sweep_stale_tmp(max_age_seconds=0.0 if kind is None else 3600.0)
        removed = 0
        for entry in self.entries():
            if kind is not None and entry.kind != kind:
                continue
            self._unlink(entry.path)
            removed += 1
        if removed:
            self.write_manifest()
        return removed


# ----------------------------------------------------------------------
_STORES: dict[str, ResultStore] = {}


def default_store() -> ResultStore:
    """The store rooted at :func:`cache_dir` (one instance per root, so
    hit/miss counters survive across calls but tests can redirect the
    root via ``REPRO_CACHE_DIR`` mid-process)."""
    root = str(cache_dir())
    store = _STORES.get(root)
    if store is None:
        store = _STORES[root] = ResultStore(root)
    return store
