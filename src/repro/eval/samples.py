"""Sample preparation: benchmark entries → model-ready training samples.

One :class:`PreparedSample` per executed (query, placement) pair, carrying
every representation the experiments compare:

* the joint query-UDF graph (GRACEFUL),
* the query-only graph and UDF-only graph (split baselines),
* the flat UDF feature vector (FlatVector baseline),
* the runtime and its UDF/query decomposition,
* metadata for stratified evaluation (placement, complexity, dataset).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.builder import DatasetBenchmark
from repro.core.joint_graph import (
    JointGraph,
    JointGraphConfig,
    build_joint_graph,
    build_udf_only_graph,
)
from repro.sql.plan import Aggregate, UDFFilter, UDFProject, find_nodes
from repro.sql.query import UDFPlacement
from repro.stats import StatisticsCatalog, make_estimator
from repro.udf.udf import UDF


@dataclass
class PreparedSample:
    """One model-ready data point."""

    joint_graph: JointGraph
    runtime: float
    query_runtime: float
    udf_runtime: float
    dataset: str
    placement: UDFPlacement
    query_id: int
    udf: UDF | None = None
    query_graph: JointGraph | None = None
    udf_graph: JointGraph | None = None
    est_udf_input_rows: float = 0.0
    true_udf_input_rows: float = 0.0
    udf_meta: dict = field(default_factory=dict)
    has_udf: bool = False
    #: cardinality at the top of the plan (below the final aggregation);
    #: the "Card. Est. Error" column of Table III compares these.
    top_est_card: float = 0.0
    top_true_card: float = 0.0


def prepare_dataset_samples(
    bench: DatasetBenchmark,
    estimator_name: str = "actual",
    placements: tuple[UDFPlacement, ...] | None = None,
    joint_config: JointGraphConfig | None = None,
    include_baseline_graphs: bool = False,
    catalog: StatisticsCatalog | None = None,
) -> list[PreparedSample]:
    """Build samples for every (entry, placement) of one dataset benchmark."""
    catalog = catalog or StatisticsCatalog(bench.database)
    estimator = make_estimator(estimator_name, bench.database)
    joint_config = joint_config or JointGraphConfig()
    query_config = JointGraphConfig(
        udf_graph=joint_config.udf_graph,
        distinguish_udf_filter=joint_config.distinguish_udf_filter,
        include_udf_subgraph=False,
    )
    samples: list[PreparedSample] = []
    for entry in bench.entries:
        for placement, run in entry.runs.items():
            if placements is not None and placement not in placements:
                continue
            plan = run.plan
            joint = build_joint_graph(plan, catalog, estimator, joint_config)
            sample = PreparedSample(
                joint_graph=joint,
                runtime=run.runtime,
                query_runtime=run.query_runtime,
                udf_runtime=run.udf_runtime,
                dataset=bench.name,
                placement=placement,
                query_id=entry.query.query_id,
                udf=entry.query.udf.udf if entry.query.has_udf else None,
                udf_meta=dict(entry.udf_meta),
                has_udf=entry.query.has_udf,
            )
            udf_ops = find_nodes(plan, UDFFilter) + find_nodes(plan, UDFProject)
            if udf_ops:
                child = udf_ops[0].children[0]
                sample.est_udf_input_rows = float(child.est_card or 0.0)
                sample.true_udf_input_rows = float(child.true_card or 0.0)
            top = _top_estimable_node(plan)
            sample.top_est_card = float(top.est_card or 0.0)
            sample.top_true_card = float(top.true_card or 0.0)
            if include_baseline_graphs:
                sample.query_graph = build_joint_graph(
                    plan, catalog, estimator, query_config
                )
                if udf_ops:
                    sample.udf_graph = build_udf_only_graph(
                        plan, catalog, estimator, joint_config
                    )
            samples.append(sample)
    return samples


def _top_estimable_node(plan):
    """The highest plan node whose cardinality an estimator can produce.

    Above a UDF filter, cardinalities are unknowable (§IV); Table III's
    "Card. Est. Error" column therefore measures the top node *below* the
    UDF filter (for plans without a UDF filter: below the aggregation).
    """
    udf_filters = find_nodes(plan, UDFFilter)
    if udf_filters:
        return udf_filters[0].children[0]
    return plan.children[0] if isinstance(plan, Aggregate) else plan


def training_placements() -> tuple[UDFPlacement, ...]:
    """Placements seen during training (the paper holds INTERMEDIATE out)."""
    return (UDFPlacement.PUSH_DOWN, UDFPlacement.PULL_UP)


def runtimes_of(samples: list[PreparedSample]) -> np.ndarray:
    return np.asarray([s.runtime for s in samples], dtype=np.float64)


def joint_graphs_of(samples: list[PreparedSample]) -> list[JointGraph]:
    return [s.joint_graph for s in samples]
