"""Evaluation metrics: the Q-error and its percentiles."""

from __future__ import annotations

import numpy as np


def q_error(predicted: np.ndarray, actual: np.ndarray, eps: float = 1e-9) -> np.ndarray:
    """Elementwise Q-error: ``max(pred/actual, actual/pred)`` (paper §VI)."""
    pred = np.maximum(np.asarray(predicted, dtype=np.float64), eps)
    act = np.maximum(np.asarray(actual, dtype=np.float64), eps)
    return np.maximum(pred / act, act / pred)


def q_error_summary(
    predicted: np.ndarray, actual: np.ndarray
) -> dict[str, float]:
    """Median / 95th / 99th percentile Q-errors, as reported in the paper."""
    errors = q_error(predicted, actual)
    if len(errors) == 0:
        return {"median": float("nan"), "p95": float("nan"), "p99": float("nan")}
    return {
        "median": float(np.median(errors)),
        "p95": float(np.percentile(errors, 95)),
        "p99": float(np.percentile(errors, 99)),
        "mean": float(np.mean(errors)),
        "max": float(np.max(errors)),
        "count": float(len(errors)),
    }


def format_summary(summary: dict[str, float]) -> str:
    return (
        f"median={summary['median']:.2f} "
        f"p95={summary['p95']:.2f} p99={summary['p99']:.2f} "
        f"(n={int(summary.get('count', 0))})"
    )
