"""Leave-one-out cross-validation folds over the benchmark datasets."""

from __future__ import annotations

from repro.storage.generator import DATASET_NAMES


def leave_one_out_folds(
    datasets: tuple[str, ...] = DATASET_NAMES,
    n_folds: int | None = None,
) -> list[tuple[str, tuple[str, ...]]]:
    """(test_dataset, train_datasets) pairs.

    The paper runs all 20 folds; ``n_folds`` restricts to the first N for
    CI-friendly runs (the dataset order is the paper's alphabetical one,
    so fold subsets are deterministic).
    """
    folds = []
    for test in datasets:
        train = tuple(d for d in datasets if d != test)
        folds.append((test, train))
    if n_folds is not None:
        folds = folds[:n_folds]
    return folds
