"""Typed topological message-passing GNN (§III-D).

Architecture, following the GNN-MLP design of the paper (itself based on
the zero-shot cost model [11]):

1. *node encoding*: a per-node-type MLP embeds raw features into a shared
   hidden space (this is where "each node type translates into a node
   type of the GNN");
2. *topological message passing*: nodes are processed level by level in
   topological order; each node combines its own encoding with the mean
   of its predecessors' hidden states through an update MLP;
3. *readout*: the root node's state (the plan's top operator, which has
   aggregated the whole query and UDF) feeds a regression MLP that
   predicts log(runtime).

The model computes in ``GNNConfig.dtype`` — float32 by default, float64
as the opt-in parity mode (DESIGN.md §8). Batches prepared with the
matching dtype flow through without copies; mismatched batches are cast
on entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.encoding import FEATURE_DIMS, NODE_TYPES
from repro.model.batching import GraphBatch
from repro.nn.layers import MLP, Module
from repro.nn.tensor import Tensor, concat, gather_rows, scatter_add


@dataclass
class GNNConfig:
    hidden_dim: int = 32
    encoder_hidden: tuple[int, ...] = (32,)
    update_hidden: tuple[int, ...] = (32,)
    head_hidden: tuple[int, ...] = (32, 16)
    dropout: float = 0.0
    #: aggregate predecessor states by sum AND mean (sum lets costs
    #: accumulate along operator chains; mean is scale-free). When False
    #: only the mean is used.
    sum_aggregation: bool = True
    #: readout = concat(root state, sum-pool over all node states). The
    #: sum-pool shortcut lets total cost be a sum of per-node terms
    #: without travelling the whole DAG depth (reproduction adaptation
    #: for the small numpy GNN; disable for the paper-faithful variant).
    sum_pool_readout: bool = True
    #: use one update MLP per node type (paper-faithful but slower) or a
    #: single shared update MLP (type information is already injected by
    #: the per-type encoders).
    per_type_updates: bool = False
    node_types: tuple[str, ...] = field(default_factory=lambda: NODE_TYPES)
    seed: int = 0
    #: compute precision: "float32" (default, fast) or "float64"
    #: (parity mode for equivalence checks against the reference
    #: pipeline). Initialization draws the same rng stream either way.
    dtype: str = "float32"


class CostGNN(Module):
    """The GNN-MLP cost model over batched joint graphs."""

    def __init__(self, config: GNNConfig | None = None):
        super().__init__()
        self.config = config or GNNConfig()
        cfg = self.config
        dtype = np.dtype(cfg.dtype)
        rng = np.random.default_rng(cfg.seed)
        self.encoders: dict[str, MLP] = {}
        for gtype in cfg.node_types:
            encoder = MLP(
                FEATURE_DIMS[gtype],
                list(cfg.encoder_hidden),
                cfg.hidden_dim,
                dropout_p=cfg.dropout,
                rng=rng,
                dtype=dtype,
            )
            self.add_module(f"enc_{gtype}", encoder)
            self.encoders[gtype] = encoder
        update_in = (3 if cfg.sum_aggregation else 2) * cfg.hidden_dim
        if cfg.per_type_updates:
            self.updates: dict[str, MLP] = {}
            for gtype in cfg.node_types:
                update = MLP(
                    update_in, list(cfg.update_hidden), cfg.hidden_dim,
                    dropout_p=cfg.dropout, rng=rng, dtype=dtype,
                )
                self.add_module(f"upd_{gtype}", update)
                self.updates[gtype] = update
            self.shared_update = None
        else:
            self.shared_update = MLP(
                update_in, list(cfg.update_hidden), cfg.hidden_dim,
                dropout_p=cfg.dropout, rng=rng, dtype=dtype,
            )
            self.add_module("upd_shared", self.shared_update)
            self.updates = {}
        head_in = cfg.hidden_dim * (2 if cfg.sum_pool_readout else 1)
        self.head = MLP(
            head_in, list(cfg.head_hidden), 1, dropout_p=cfg.dropout, rng=rng,
            dtype=dtype,
        )
        self.add_module("head", self.head)

    # ------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.config.dtype)

    # ------------------------------------------------------------------
    def _encode_batch(self, batch: GraphBatch) -> Tensor | None:
        """Run every per-type encoder once over the whole batch.

        Returns the type-major concatenation of encodings; per level the
        forward pass gathers its rows via ``LevelData.encode_rows``.
        None when the batch carries no type-major layout (reference
        batches), falling back to per-level encoding.
        """
        if batch.type_feats is None:
            return None
        dtype = self.dtype
        parts = [
            self.encoders[gtype](Tensor(features.astype(dtype, copy=False)))
            for gtype, features in batch.type_feats.items()
        ]
        return parts[0] if len(parts) == 1 else concat(parts, axis=0)

    def _encode_level(self, level, encoded_all: Tensor | None) -> Tensor:
        """This level's (n_nodes, hidden) encodings."""
        if encoded_all is not None:
            return gather_rows(encoded_all, level.encode_rows)
        dtype = self.dtype
        parts = []
        for gtype, (features, positions) in level.type_groups.items():
            encoded = self.encoders[gtype](
                Tensor(features.astype(dtype, copy=False))
            )
            # positions within one type group are distinct by
            # construction, so the scatter is a plain assignment
            parts.append(scatter_add(encoded, positions, level.n_nodes, unique=True))
        out = parts[0]
        for part in parts[1:]:
            out = out + part
        return out

    def _update_level(self, level, combined: Tensor) -> Tensor:
        """Apply (per-type or shared) update MLPs to the combined input."""
        if self.shared_update is not None:
            return self.shared_update(combined)
        parts = []
        for gtype, (_, positions) in level.type_groups.items():
            rows = gather_rows(combined, positions)
            updated = self.updates[gtype](rows)
            parts.append(scatter_add(updated, positions, level.n_nodes, unique=True))
        out = parts[0]
        for part in parts[1:]:
            out = out + part
        return out

    def forward(self, batch: GraphBatch) -> Tensor:
        """Predicted log(runtime), shape (n_graphs,)."""
        dtype = self.dtype
        encoded_all = self._encode_batch(batch)
        level_states: list[Tensor] = []
        for lv, level in enumerate(batch.levels):
            if level.n_nodes == 0:
                level_states.append(
                    Tensor(np.zeros((0, self.config.hidden_dim), dtype=dtype))
                )
                continue
            self_enc = self._encode_level(level, encoded_all)
            if lv == 0 or not level.edge_groups:
                level_states.append(self_enc)
                continue
            agg_parts = []
            for src_level, src_idx, dst_idx in level.edge_groups:
                messages = gather_rows(level_states[src_level], src_idx)
                agg_parts.append(scatter_add(messages, dst_idx, level.n_nodes))
            agg_sum = agg_parts[0]
            for part in agg_parts[1:]:
                agg_sum = agg_sum + part
            inv_indegree = (1.0 / level.indegree).astype(dtype, copy=False)
            agg_mean = agg_sum * Tensor(inv_indegree)
            if self.config.sum_aggregation:
                combined = concat([self_enc, agg_sum, agg_mean], axis=-1)
            else:
                combined = concat([self_enc, agg_mean], axis=-1)
            level_states.append(self._update_level(level, combined))

        # Readout: gather each graph's root state, grouped by root level.
        root_order = np.argsort(batch.root_levels, kind="stable")
        root_lvs, first = np.unique(batch.root_levels[root_order], return_index=True)
        bounds = np.append(first, len(root_order))
        parts = []
        for lv, start, stop in zip(root_lvs, bounds[:-1], bounds[1:]):
            graph_indices = root_order[start:stop]
            rows = gather_rows(
                level_states[int(lv)], batch.root_positions[graph_indices]
            )
            parts.append(
                scatter_add(rows, graph_indices, batch.n_graphs, unique=True)
            )
        pooled = parts[0]
        for part in parts[1:]:
            pooled = pooled + part
        if self.config.sum_pool_readout:
            sum_parts = []
            for lv, level in enumerate(batch.levels):
                if level.n_nodes == 0:
                    continue
                sum_parts.append(
                    scatter_add(level_states[lv], level.graph_index, batch.n_graphs)
                )
            graph_sum = sum_parts[0]
            for part in sum_parts[1:]:
                graph_sum = graph_sum + part
            pooled = concat([pooled, graph_sum], axis=-1)
        prediction = self.head(pooled)  # (B, 1) log runtime
        return prediction

    # ------------------------------------------------------------------
    def predict_runtimes(self, batch: GraphBatch) -> np.ndarray:
        """Runtimes in seconds (eval mode, no tape)."""
        was_training = self.training
        self.eval()
        log_pred = self.forward(batch).data.reshape(-1).astype(np.float64)
        if was_training:
            self.train()
        return np.exp(log_pred)
