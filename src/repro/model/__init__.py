"""Learned cost models: the GRACEFUL GNN and the paper's baselines."""

from repro.model.baselines import (
    FlatGraphBaseline,
    GracefulModel,
    GraphGraphBaseline,
)
from repro.model.batching import (
    GraphBatch,
    compute_levels,
    make_batch,
    make_batch_prepared,
)
from repro.model.flatvector import FLAT_FEATURE_NAMES, FlatVectorUDFModel, flat_features
from repro.model.prepared import (
    BatchCache,
    PreparedGraph,
    PreparedGraphCache,
    clear_caches,
    default_batch_cache,
    default_graph_cache,
    prepare_graph,
)
from repro.model.gbm import GBMConfig, GBMRegressor
from repro.model.gnn import CostGNN, GNNConfig
from repro.model.persistence import load_model, model_summary, save_model
from repro.model.training import (
    TrainConfig,
    TrainResult,
    evaluate_cost_model,
    predict_runtimes,
    train_cost_model,
)

__all__ = [
    "BatchCache",
    "CostGNN",
    "FLAT_FEATURE_NAMES",
    "FlatGraphBaseline",
    "FlatVectorUDFModel",
    "GBMConfig",
    "GBMRegressor",
    "GNNConfig",
    "GracefulModel",
    "GraphBatch",
    "GraphGraphBaseline",
    "PreparedGraph",
    "PreparedGraphCache",
    "TrainConfig",
    "TrainResult",
    "clear_caches",
    "compute_levels",
    "default_batch_cache",
    "default_graph_cache",
    "evaluate_cost_model",
    "flat_features",
    "load_model",
    "model_summary",
    "save_model",
    "make_batch",
    "make_batch_prepared",
    "predict_runtimes",
    "prepare_graph",
    "train_cost_model",
]
