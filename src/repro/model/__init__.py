"""Learned cost models: the GRACEFUL GNN and the paper's baselines."""

from repro.model.baselines import (
    FlatGraphBaseline,
    GracefulModel,
    GraphGraphBaseline,
)
from repro.model.batching import GraphBatch, compute_levels, make_batch
from repro.model.flatvector import FLAT_FEATURE_NAMES, FlatVectorUDFModel, flat_features
from repro.model.gbm import GBMConfig, GBMRegressor
from repro.model.gnn import CostGNN, GNNConfig
from repro.model.persistence import load_model, save_model
from repro.model.training import (
    TrainConfig,
    TrainResult,
    evaluate_cost_model,
    predict_runtimes,
    train_cost_model,
)

__all__ = [
    "CostGNN",
    "FLAT_FEATURE_NAMES",
    "FlatGraphBaseline",
    "FlatVectorUDFModel",
    "GBMConfig",
    "GBMRegressor",
    "GNNConfig",
    "GracefulModel",
    "GraphBatch",
    "GraphGraphBaseline",
    "TrainConfig",
    "TrainResult",
    "compute_levels",
    "evaluate_cost_model",
    "flat_features",
    "load_model",
    "save_model",
    "make_batch",
    "predict_runtimes",
    "train_cost_model",
]
