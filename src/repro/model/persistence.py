"""Model persistence: save/load trained cost models to ``.npz`` files.

The GNN's configuration is stored alongside the weights so a loaded model
is immediately usable for prediction (e.g. inside a DBMS process that did
not train it).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.exceptions import ModelError
from repro.model.gnn import CostGNN, GNNConfig

_CONFIG_KEY = "__gnn_config__"


def model_summary(model: CostGNN) -> dict:
    """Size/precision metadata of a model, as stored by the registry.

    Pure bookkeeping (no hashing) so :mod:`repro.model` needs no
    dependency on the fingerprint machinery in :mod:`repro.eval`.
    """
    params = model.parameters()
    return {
        "dtype": model.config.dtype,
        "hidden_dim": model.config.hidden_dim,
        "n_parameters": int(sum(p.data.size for p in params)),
        "n_tensors": len(params),
        "node_types": list(model.config.node_types),
    }


def save_model(model: CostGNN, path: str | Path) -> Path:
    """Serialize a trained :class:`CostGNN` (weights + config) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    config = asdict(model.config)
    config["node_types"] = list(config["node_types"])
    payload = {name: array for name, array in state.items()}
    payload[_CONFIG_KEY] = np.frombuffer(
        json.dumps(config).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_model(path: str | Path) -> CostGNN:
    """Reconstruct a :class:`CostGNN` saved by :func:`save_model`."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path, allow_pickle=False) as archive:
        if _CONFIG_KEY not in archive:
            raise ModelError(f"{path} is not a saved CostGNN (missing config)")
        config_raw = json.loads(bytes(archive[_CONFIG_KEY].tobytes()).decode())
        # archives written before the dtype-configurable engine carry
        # float64 weights and no dtype entry — don't downcast them
        config_raw.setdefault("dtype", "float64")
        config_raw["node_types"] = tuple(config_raw["node_types"])
        for key in ("encoder_hidden", "update_hidden", "head_hidden"):
            config_raw[key] = tuple(config_raw[key])
        config = GNNConfig(**config_raw)
        model = CostGNN(config)
        state = {
            name: archive[name] for name in archive.files if name != _CONFIG_KEY
        }
    model.load_state_dict(state)
    model.eval()
    return model
