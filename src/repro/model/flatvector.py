"""FlatVector UDF featurization [29] + per-tuple cost regression.

The Flat+Graph baseline of the paper represents a UDF as a flat vector
(loop/branch counts, invocation counts of arithmetic/string/library
operations) and predicts *per-tuple* cost with a gradient-boosted model,
scaled by the (estimated) number of rows the UDF processes.
"""

from __future__ import annotations

import numpy as np

from repro.model.gbm import GBMConfig, GBMRegressor
from repro.storage.datatypes import DataType
from repro.udf.udf import UDF

#: feature order of :func:`flat_features` (kept for docs and tests)
FLAT_FEATURE_NAMES: tuple[str, ...] = (
    "n_branches",
    "n_loops",
    "log_total_loop_iterations",
    "log_arith_ops",
    "log_string_ops",
    "log_math_calls",
    "log_numpy_calls",
    "nr_params",
    "n_int_args",
    "n_float_args",
    "n_string_args",
)


def flat_features(udf: UDF) -> np.ndarray:
    """The flat (row-count-independent) representation of a UDF."""
    ops = udf.op_counts
    total_iters = float(sum(loop.n_iterations for loop in udf.loops))
    return np.array(
        [
            float(len(udf.branches)),
            float(len(udf.loops)),
            np.log1p(total_iters),
            np.log1p(float(ops.get("arith", 0.0))),
            np.log1p(float(ops.get("string", 0.0))),
            np.log1p(float(ops.get("math_call", 0.0))),
            np.log1p(float(ops.get("numpy_call", 0.0))),
            float(udf.n_args),
            float(sum(1 for t in udf.arg_types if t is DataType.INT)),
            float(sum(1 for t in udf.arg_types if t is DataType.FLOAT)),
            float(sum(1 for t in udf.arg_types if t is DataType.STRING)),
        ]
    )


class FlatVectorUDFModel:
    """Per-tuple UDF cost model over flat features.

    ``fit`` takes total UDF runtimes and the *true* processed row counts;
    ``predict`` scales the learned per-tuple cost by the (estimated) row
    count — exactly how the paper wires the baseline.
    """

    def __init__(self, config: GBMConfig | None = None):
        self.gbm = GBMRegressor(config or GBMConfig())

    def fit(
        self,
        udfs: list[UDF],
        udf_runtimes: np.ndarray,
        processed_rows: np.ndarray,
    ) -> "FlatVectorUDFModel":
        X = np.vstack([flat_features(u) for u in udfs])
        per_tuple = np.asarray(udf_runtimes) / np.maximum(
            np.asarray(processed_rows, dtype=np.float64), 1.0
        )
        # Per-tuple costs span orders of magnitude -> learn in log space.
        self.gbm.fit(X, np.log(np.maximum(per_tuple, 1e-12)))
        return self

    def predict(self, udfs: list[UDF], processed_rows: np.ndarray) -> np.ndarray:
        X = np.vstack([flat_features(u) for u in udfs])
        per_tuple = np.exp(self.gbm.predict(X))
        return per_tuple * np.maximum(
            np.asarray(processed_rows, dtype=np.float64), 1.0
        )
