"""Training loop for graph-based cost models.

The loop never rebuilds topology: graphs are prepared once through the
process-wide :class:`~repro.model.prepared.PreparedGraphCache`, shards
are assembled into batches up front, and epochs only shuffle index
arrays over the cached shard batches (DESIGN.md §8). The pre-refactor
behavior — a fresh random partition every epoch — remains available as
``TrainConfig.reshard_each_epoch`` and is the parity mode used by the
equivalence tests (together with ``GNNConfig(dtype="float64")``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.joint_graph import JointGraph
from repro.eval.metrics import q_error_summary
from repro.model.batching import make_batch, make_batch_prepared
from repro.model.gnn import CostGNN
from repro.model.prepared import (
    default_batch_cache,
    default_graph_cache,
    prepare_graphs,
)
from repro.nn.loss import log_mse_loss
from repro.nn.optim import Adam, clip_grad_norm


@dataclass
class TrainConfig:
    epochs: int = 60
    lr: float = 3e-3
    weight_decay: float = 1e-5
    grad_clip: float = 5.0
    #: number of random shards per epoch (stochasticity without paying the
    #: per-small-batch Python overhead).
    shards_per_epoch: int = 4
    seed: int = 0
    verbose: bool = False
    #: early-stopping patience on training loss plateaus (epochs); 0 = off.
    patience: int = 0
    #: draw a fresh random partition every epoch instead of shuffling the
    #: order of fixed, pre-assembled shard batches. Slower (one batch
    #: assembly per shard per epoch) but reproduces the reference
    #: training trajectory exactly — the float64 parity mode. Exact
    #: parity assumes dropout == 0 (the default): with dropout active
    #: the batch-level encoders consume the rng in a different order
    #: than the reference's per-level encoder calls.
    reshard_each_epoch: bool = False


@dataclass
class TrainResult:
    losses: list[float]
    final_loss: float
    epochs_run: int


def train_cost_model(
    model: CostGNN,
    graphs: list[JointGraph],
    runtimes: np.ndarray | list[float],
    config: TrainConfig | None = None,
) -> TrainResult:
    """Train ``model`` to predict log runtimes of ``graphs``."""
    config = config or TrainConfig()
    rng = np.random.default_rng(config.seed)
    runtimes = np.asarray(runtimes, dtype=np.float64)
    params = model.parameters()
    optimizer = Adam(params, lr=config.lr, weight_decay=config.weight_decay)
    dtype = getattr(model, "dtype", np.dtype(np.float64))
    n = len(graphs)
    n_shards = max(1, min(config.shards_per_epoch, n))
    graph_cache = default_graph_cache()
    prepared = graph_cache.get_many(graphs)

    shard_sizes: list[int] = []
    shard_batches = []
    if not config.reshard_each_epoch:
        base_order = rng.permutation(n)
        for shard in np.array_split(base_order, n_shards):
            if len(shard) == 0:
                continue
            shard_sizes.append(len(shard))
            shard_batches.append(
                make_batch_prepared(
                    [prepared[i] for i in shard], runtimes[shard], dtype=dtype
                )
            )

    losses: list[float] = []
    best = float("inf")
    stall = 0
    model.train()
    for epoch in range(config.epochs):
        if config.reshard_each_epoch:
            order = rng.permutation(n)
            epoch_shards = [s for s in np.array_split(order, n_shards) if len(s)]
            epoch_batches = [
                make_batch_prepared(
                    [prepared[i] for i in s], runtimes[s], dtype=dtype
                )
                for s in epoch_shards
            ]
            epoch_sizes = [len(s) for s in epoch_shards]
        else:
            shard_order = rng.permutation(len(shard_batches))
            epoch_batches = [shard_batches[i] for i in shard_order]
            epoch_sizes = [shard_sizes[i] for i in shard_order]
        epoch_loss = 0.0
        for batch, size in zip(epoch_batches, epoch_sizes):
            optimizer.zero_grad()
            prediction = model.forward(batch)
            loss = log_mse_loss(prediction, batch.targets.reshape(-1, 1))
            loss.backward()
            clip_grad_norm(params, config.grad_clip)
            optimizer.step()
            epoch_loss += loss.item() * size
        epoch_loss /= n
        losses.append(epoch_loss)
        if config.verbose and (epoch % 10 == 0 or epoch == config.epochs - 1):
            print(f"  epoch {epoch:3d}  loss={epoch_loss:.4f}")
        if config.patience:
            if epoch_loss < best - 1e-4:
                best = epoch_loss
                stall = 0
            else:
                stall += 1
                if stall >= config.patience:
                    break
    return TrainResult(losses=losses, final_loss=losses[-1], epochs_run=len(losses))


def evaluate_cost_model(
    model: CostGNN,
    graphs: list[JointGraph],
    runtimes: np.ndarray | list[float],
    batch_size: int = 512,
) -> dict[str, float]:
    """Q-error summary of ``model`` on held-out graphs."""
    predictions = predict_runtimes(model, graphs, batch_size)
    return q_error_summary(predictions, np.asarray(runtimes, dtype=np.float64))


def predict_runtimes(
    model: CostGNN, graphs: list[JointGraph], batch_size: int = 512
) -> np.ndarray:
    """Predicted runtimes (seconds) for a list of graphs.

    Assembled inference batches are memoized in the process-wide
    :class:`~repro.model.prepared.BatchCache`: predicting the same chunk
    of graphs again (e.g. several models evaluating one test set) skips
    batching entirely. Tiny chunks are not cached — the advisor costs a
    ~6-graph selectivity grid of freshly built graphs per decision, so
    their identity keys never repeat and caching would only evict the
    fold loop's reusable topology. Test sets (20+ graphs even at quick
    scale) stay above the threshold and remain cached.
    """
    dtype = getattr(model, "dtype", np.dtype(np.float64))
    batch_cache = default_batch_cache()
    predictions = np.empty(len(graphs), dtype=np.float64)
    for start in range(0, len(graphs), batch_size):
        chunk = graphs[start : start + batch_size]
        if len(chunk) < 16:
            batch = make_batch_prepared(
                prepare_graphs(chunk), np.zeros(len(chunk)), dtype=dtype
            )
        else:
            key = (tuple(id(g) for g in chunk), dtype.str)
            batch = batch_cache.get(key)
            if batch is None:
                batch = make_batch(chunk, np.zeros(len(chunk)), dtype=dtype)
                batch_cache.put(key, batch, pins=tuple(chunk))
        predictions[start : start + len(chunk)] = model.predict_runtimes(batch)
    return predictions
