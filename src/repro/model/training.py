"""Training loop for graph-based cost models."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.joint_graph import JointGraph
from repro.eval.metrics import q_error_summary
from repro.model.batching import make_batch
from repro.model.gnn import CostGNN
from repro.nn.loss import log_mse_loss
from repro.nn.optim import Adam, clip_grad_norm


@dataclass
class TrainConfig:
    epochs: int = 60
    lr: float = 3e-3
    weight_decay: float = 1e-5
    grad_clip: float = 5.0
    #: number of random shards per epoch (stochasticity without paying the
    #: per-small-batch Python overhead).
    shards_per_epoch: int = 4
    seed: int = 0
    verbose: bool = False
    #: early-stopping patience on training loss plateaus (epochs); 0 = off.
    patience: int = 0


@dataclass
class TrainResult:
    losses: list[float]
    final_loss: float
    epochs_run: int


def train_cost_model(
    model: CostGNN,
    graphs: list[JointGraph],
    runtimes: np.ndarray | list[float],
    config: TrainConfig | None = None,
) -> TrainResult:
    """Train ``model`` to predict log runtimes of ``graphs``."""
    config = config or TrainConfig()
    rng = np.random.default_rng(config.seed)
    runtimes = np.asarray(runtimes, dtype=np.float64)
    optimizer = Adam(
        model.parameters(), lr=config.lr, weight_decay=config.weight_decay
    )
    n = len(graphs)
    n_shards = max(1, min(config.shards_per_epoch, n))
    losses: list[float] = []
    best = float("inf")
    stall = 0
    model.train()
    for epoch in range(config.epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        for shard in np.array_split(order, n_shards):
            if len(shard) == 0:
                continue
            batch = make_batch([graphs[i] for i in shard], runtimes[shard])
            optimizer.zero_grad()
            prediction = model.forward(batch)
            loss = log_mse_loss(prediction, batch.targets.reshape(-1, 1))
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            epoch_loss += loss.item() * len(shard)
        epoch_loss /= n
        losses.append(epoch_loss)
        if config.verbose and (epoch % 10 == 0 or epoch == config.epochs - 1):
            print(f"  epoch {epoch:3d}  loss={epoch_loss:.4f}")
        if config.patience:
            if epoch_loss < best - 1e-4:
                best = epoch_loss
                stall = 0
            else:
                stall += 1
                if stall >= config.patience:
                    break
    return TrainResult(losses=losses, final_loss=losses[-1], epochs_run=len(losses))


def evaluate_cost_model(
    model: CostGNN,
    graphs: list[JointGraph],
    runtimes: np.ndarray | list[float],
    batch_size: int = 512,
) -> dict[str, float]:
    """Q-error summary of ``model`` on held-out graphs."""
    predictions = predict_runtimes(model, graphs, batch_size)
    return q_error_summary(predictions, np.asarray(runtimes, dtype=np.float64))


def predict_runtimes(
    model: CostGNN, graphs: list[JointGraph], batch_size: int = 512
) -> np.ndarray:
    """Predicted runtimes (seconds) for a list of graphs."""
    predictions = np.empty(len(graphs), dtype=np.float64)
    for start in range(0, len(graphs), batch_size):
        chunk = graphs[start : start + batch_size]
        batch = make_batch(chunk, np.zeros(len(chunk)))
        predictions[start : start + len(chunk)] = model.predict_runtimes(batch)
    return predictions
