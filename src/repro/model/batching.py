"""Batch preparation for level-wise topological message passing.

Topological message passing updates every node exactly once, in
topological order. To make that efficient in numpy we group nodes by
*level* (longest path from any source), so an entire batch of graphs is
processed as ``max_depth`` vectorized steps:

* per level, per node type: the raw feature matrix and local positions,
* per level: incoming edges grouped by source level (gather from the
  source level's hidden states, scatter-add into this level),
* per graph: where its root landed, for the readout.

Assembly is pure numpy over :class:`~repro.model.prepared.PreparedGraph`
arrays (DESIGN.md §8): local positions come from one stable argsort by
level, (level, type) node groups and (dst level, src level) edge buckets
from stable argsorts over composite keys, in-degrees from ``np.bincount``.
There are no per-node or per-edge Python loops — the only loops run over
levels and groups. The original loop-based implementation is retained in
:mod:`repro.model._reference` for equivalence tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import encoding as enc
from repro.core.joint_graph import JointGraph
from repro.exceptions import ModelError
from repro.model.prepared import (
    NUM_TYPES,
    PreparedGraph,
    PreparedGraphCache,
    compute_levels,
    default_graph_cache,
    group_bounds,
)

__all__ = [
    "GraphBatch",
    "LevelData",
    "compute_levels",
    "make_batch",
    "make_batch_prepared",
]


@dataclass
class LevelData:
    """All per-level arrays needed by one message-passing step."""

    n_nodes: int
    #: type -> (features (n_t, f_dim), local positions (n_t,))
    type_groups: dict[str, tuple[np.ndarray, np.ndarray]]
    #: (source_level, src local indices, dst local indices)
    edge_groups: list[tuple[int, np.ndarray, np.ndarray]]
    #: in-degree per node, clipped to >= 1 (shape (n_nodes, 1))
    indegree: np.ndarray
    #: graph index of each node in the level (n_nodes,)
    graph_index: np.ndarray
    #: row of each node (by local position) inside the batch-level
    #: type-major encoding (``GraphBatch.type_feats`` concatenated in
    #: type order); None on reference-built batches
    encode_rows: np.ndarray | None = None


@dataclass
class GraphBatch:
    """A batch of joint graphs prepared for the GNN."""

    levels: list[LevelData]
    #: per graph: (level, local index) of its root node
    roots: list[tuple[int, int]]
    targets: np.ndarray  # (B,) true runtimes in seconds
    n_graphs: int
    #: root level per graph (B,) — vectorized view of ``roots``
    root_levels: np.ndarray
    #: root local position per graph (B,)
    root_positions: np.ndarray
    meta: list[dict] = field(default_factory=list)
    #: type -> features of ALL nodes of that type across levels, in
    #: (type, level, graph, node) order. Lets the GNN run each per-type
    #: encoder once per batch instead of once per (level, type); each
    #: level then gathers its rows via ``LevelData.encode_rows``. None
    #: on reference-built batches (per-level encoding fallback).
    type_feats: dict[str, np.ndarray] | None = None


def make_batch(
    graphs: list[JointGraph],
    targets: np.ndarray | list[float],
    meta: list[dict] | None = None,
    *,
    dtype: np.dtype | str = np.float64,
    cache: PreparedGraphCache | None = None,
) -> GraphBatch:
    """Merge graphs into one level-indexed batch.

    Per-graph topology is fetched from ``cache`` (the process default
    when None), so repeated batching of the same graphs only pays for
    assembly. ``dtype`` selects the precision of the feature and
    in-degree arrays (DESIGN.md §8 dtype policy).
    """
    if not graphs:
        raise ModelError("cannot batch zero graphs")
    cache = cache if cache is not None else default_graph_cache()
    prepared = cache.get_many(graphs)
    return make_batch_prepared(prepared, targets, meta, dtype=dtype)


def make_batch_prepared(
    prepared: list[PreparedGraph],
    targets: np.ndarray | list[float],
    meta: list[dict] | None = None,
    *,
    dtype: np.dtype | str = np.float64,
) -> GraphBatch:
    """Assemble a :class:`GraphBatch` from prepared graphs (numpy only)."""
    if not prepared:
        raise ModelError("cannot batch zero graphs")
    dtype = np.dtype(dtype)
    n_graphs = len(prepared)
    n_per = np.asarray([p.n_nodes for p in prepared], dtype=np.int64)
    node_offset = np.zeros(n_graphs + 1, dtype=np.int64)
    np.cumsum(n_per, out=node_offset[1:])
    n_total = int(node_offset[-1])

    node_meta = (
        np.concatenate([p.node_meta for p in prepared], axis=0)
        if n_total
        else np.zeros((0, 5), dtype=np.int64)
    )
    levels_cat = node_meta[:, 0]
    type_cat = node_meta[:, 1]
    graph_idx = np.repeat(np.arange(n_graphs, dtype=np.int64), n_per)
    max_level = max(p.max_level for p in prepared)

    # Local positions per level: each node's prepared rank within its
    # own (graph, level) group plus the cumulative size of that level in
    # earlier graphs — identical to the order the reference
    # implementation assigns by (graph, node-id) iteration, without
    # re-sorting the batch.
    per_graph_level_counts = np.zeros((n_graphs, max_level + 1), dtype=np.int64)
    for gi, p in enumerate(prepared):
        per_graph_level_counts[gi, : p.level_counts.size] = p.level_counts
    level_base = np.zeros_like(per_graph_level_counts)
    np.cumsum(per_graph_level_counts[:-1], axis=0, out=level_base[1:])
    position = node_meta[:, 3] + level_base[graph_idx, levels_cat]
    level_sizes = per_graph_level_counts.sum(axis=0)
    level_starts = np.zeros(max_level + 2, dtype=np.int64)
    np.cumsum(level_sizes, out=level_starts[1:])
    #: batch-global slot of each node: level block start + local position
    slot = level_starts[levels_cat] + position
    graph_index_flat = np.empty(n_total, dtype=np.int64)
    graph_index_flat[slot] = graph_idx
    graph_index_by_level = np.split(graph_index_flat, level_starts[1:-1])

    # Per-type feature sources. When every graph comes from the same
    # prepare call (the common case: one joint preparation of the
    # training/prediction set), its per-type matrices are slices of one
    # shared base and each node already knows its base row — groups
    # gather straight from the shared matrices, a single copy per group
    # and no batch-level concatenation. Mixed provenance falls back to
    # concatenating per-graph matrices.
    token = prepared[0].base_token
    if all(p.base_token == token for p in prepared):
        feature_mat = prepared[0].base_matrices
        global_row = node_meta[:, 4]
    else:
        mats_by_code: dict[int, list[tuple[int, np.ndarray]]] = {}
        for gi, p in enumerate(prepared):
            for code, mat in p.features_by_type.items():
                mats_by_code.setdefault(code, []).append((gi, mat))
        start_arr = np.zeros((n_graphs, NUM_TYPES), dtype=np.int64)
        feature_mat = {}
        for code, entries in mats_by_code.items():
            offset = 0
            for gi, m in entries:
                start_arr[gi, code] = offset
                offset += m.shape[0]
            feature_mat[code] = (
                entries[0][1]
                if len(entries) == 1
                else np.concatenate([m for _, m in entries], axis=0)
            )
        global_row = node_meta[:, 2] + start_arr[graph_idx, type_cat]

    # Type-major node groups via one stable sort over a composite
    # (type, level) key; group boundaries by diffing the sorted keys
    # (already sorted, so np.unique's extra sort would be wasted).
    # Type-major order means each type's features across ALL levels are
    # one contiguous block — gathered once per type for the batch-level
    # encoders — and every (level, type) group is a view slice of it.
    type_key = type_cat * np.int64(max_level + 1) + levels_cat
    t_order = np.argsort(type_key, kind="stable")
    sorted_keys = type_key[t_order]
    t_keys, t_bounds = group_bounds(sorted_keys)
    pos_by_group = position[t_order]
    row_by_group = global_row[t_order]
    # row of each node inside the type-major concatenation, scattered
    # into its (level, position) slot for the per-level encode gathers
    rank_type_major = np.empty(n_total, dtype=np.int64)
    rank_type_major[t_order] = np.arange(n_total, dtype=np.int64)
    encode_rows_flat = np.empty(n_total, dtype=np.int64)
    encode_rows_flat[slot] = rank_type_major
    encode_rows_by_level = np.split(encode_rows_flat, level_starts[1:-1])

    type_feats: dict[str, np.ndarray] = {}
    type_groups_by_level: dict[int, dict[str, tuple[np.ndarray, np.ndarray]]] = {}
    prev_code = -1
    block_start = 0
    for key, start, stop in zip(t_keys, t_bounds[:-1], t_bounds[1:]):
        code, lv = divmod(int(key), max_level + 1)
        if code != prev_code:
            # all rows of this type across levels: one gather per type
            type_stop = int(
                np.searchsorted(sorted_keys, (code + 1) * (max_level + 1))
            )
            type_feats[enc.NODE_TYPES[code]] = feature_mat[code][
                row_by_group[start:type_stop]
            ].astype(dtype, copy=False)
            prev_code = code
            block_start = start
        type_groups_by_level.setdefault(lv, {})[enc.NODE_TYPES[code]] = (
            type_feats[enc.NODE_TYPES[code]][start - block_start : stop - block_start],
            pos_by_group[start:stop],
        )

    # Edge buckets by (dst level, src level) + per-node in-degrees.
    e_per = np.asarray([p.edge_meta.shape[0] for p in prepared], dtype=np.int64)
    n_edges = int(e_per.sum())
    edge_groups_by_level: dict[int, list[tuple[int, np.ndarray, np.ndarray]]] = {}
    indegree_flat = np.zeros(n_total, dtype=np.float64)
    if n_edges:
        shift = np.repeat(node_offset[:-1], e_per)
        edge_meta = np.concatenate([p.edge_meta for p in prepared], axis=0)
        src_g = edge_meta[:, 0] + shift
        dst_g = edge_meta[:, 1] + shift
        # scatter in-degrees straight into level-block slots
        indegree_flat += np.bincount(
            slot[dst_g], minlength=n_total
        )
        edge_key = edge_meta[:, 3] * np.int64(max_level + 1) + edge_meta[:, 2]
        e_order = np.argsort(edge_key, kind="stable")
        e_keys, e_bounds = group_bounds(edge_key[e_order])
        src_pos = position[src_g[e_order]]
        dst_pos = position[dst_g[e_order]]
        for key, start, stop in zip(e_keys, e_bounds[:-1], e_bounds[1:]):
            dst_lv, src_lv = divmod(int(key), max_level + 1)
            edge_groups_by_level.setdefault(dst_lv, []).append(
                (src_lv, src_pos[start:stop], dst_pos[start:stop])
            )
    indegree_by_level = np.split(indegree_flat, level_starts[1:-1])

    levels = [
        LevelData(
            n_nodes=int(level_sizes[lv]),
            type_groups=type_groups_by_level.get(lv, {}),
            edge_groups=edge_groups_by_level.get(lv, []),
            indegree=np.maximum(indegree_by_level[lv], 1.0)
            .reshape(-1, 1)
            .astype(dtype, copy=False),
            graph_index=graph_index_by_level[lv],
            encode_rows=encode_rows_by_level[lv],
        )
        for lv in range(max_level + 1)
    ]

    root_global = node_offset[:-1] + np.asarray(
        [p.root_id for p in prepared], dtype=np.int64
    )
    root_levels = np.asarray([p.root_level for p in prepared], dtype=np.int64)
    root_positions = position[root_global]
    return GraphBatch(
        levels=levels,
        roots=list(zip(root_levels.tolist(), root_positions.tolist())),
        targets=np.asarray(targets, dtype=np.float64),
        n_graphs=n_graphs,
        root_levels=root_levels,
        root_positions=root_positions,
        meta=meta or [{} for _ in prepared],
        type_feats=type_feats,
    )
