"""Batch preparation for level-wise topological message passing.

Topological message passing updates every node exactly once, in
topological order. To make that efficient in numpy we group nodes by
*level* (longest path from any source), so an entire batch of graphs is
processed as ``max_depth`` vectorized steps:

* per level, per node type: the raw feature matrix and local positions,
* per level: incoming edges grouped by source level (gather from the
  source level's hidden states, scatter-add into this level),
* per graph: where its root landed, for the readout.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.core.joint_graph import JointGraph
from repro.exceptions import ModelError


@dataclass
class LevelData:
    """All per-level arrays needed by one message-passing step."""

    n_nodes: int
    #: type -> (features (n_t, f_dim), local positions (n_t,))
    type_groups: dict[str, tuple[np.ndarray, np.ndarray]]
    #: (source_level, src local indices, dst local indices)
    edge_groups: list[tuple[int, np.ndarray, np.ndarray]]
    #: in-degree per node, clipped to >= 1 (shape (n_nodes, 1))
    indegree: np.ndarray
    #: graph index of each node in the level (n_nodes,)
    graph_index: np.ndarray = None  # type: ignore[assignment]


@dataclass
class GraphBatch:
    """A batch of joint graphs prepared for the GNN."""

    levels: list[LevelData]
    #: per graph: (level, local index) of its root node
    roots: list[tuple[int, int]]
    targets: np.ndarray  # (B,) true runtimes in seconds
    n_graphs: int
    meta: list[dict] = field(default_factory=list)


def compute_levels(n_nodes: int, edges: list[tuple[int, int]]) -> np.ndarray:
    """Longest-path-from-source level per node (Kahn's algorithm)."""
    indeg = np.zeros(n_nodes, dtype=np.int64)
    succs: dict[int, list[int]] = defaultdict(list)
    for src, dst in edges:
        indeg[dst] += 1
        succs[src].append(dst)
    level = np.zeros(n_nodes, dtype=np.int64)
    queue = [i for i in range(n_nodes) if indeg[i] == 0]
    seen = 0
    while queue:
        node = queue.pop()
        seen += 1
        for succ in succs.get(node, ()):
            level[succ] = max(level[succ], level[node] + 1)
            indeg[succ] -= 1
            if indeg[succ] == 0:
                queue.append(succ)
    if seen != n_nodes:
        raise ModelError("graph contains a cycle; joint graphs must be DAGs")
    return level


def make_batch(
    graphs: list[JointGraph],
    targets: np.ndarray | list[float],
    meta: list[dict] | None = None,
) -> GraphBatch:
    """Merge graphs into one level-indexed batch."""
    if not graphs:
        raise ModelError("cannot batch zero graphs")
    # Global ids: (graph_index, node_id) -> (level, local position).
    level_of: list[np.ndarray] = []
    for graph in graphs:
        level_of.append(compute_levels(graph.num_nodes, graph.edges))
    max_level = int(max(lv.max() if len(lv) else 0 for lv in level_of))

    # Assign local positions per level.
    position: list[np.ndarray] = []
    level_sizes = np.zeros(max_level + 1, dtype=np.int64)
    for gi, graph in enumerate(graphs):
        pos = np.zeros(graph.num_nodes, dtype=np.int64)
        for node in range(graph.num_nodes):
            lv = level_of[gi][node]
            pos[node] = level_sizes[lv]
            level_sizes[lv] += 1
        position.append(pos)

    # Group node features by (level, type); track each node's graph.
    feats_by: dict[tuple[int, str], list[np.ndarray]] = defaultdict(list)
    pos_by: dict[tuple[int, str], list[int]] = defaultdict(list)
    graph_index = [np.zeros(int(size), dtype=np.int64) for size in level_sizes]
    for gi, graph in enumerate(graphs):
        for node in range(graph.num_nodes):
            lv = int(level_of[gi][node])
            gtype = graph.node_types[node]
            feats_by[(lv, gtype)].append(graph.features[node])
            pos_by[(lv, gtype)].append(int(position[gi][node]))
            graph_index[lv][position[gi][node]] = gi

    # Group edges by (dst level, src level).
    edges_by: dict[tuple[int, int], tuple[list[int], list[int]]] = defaultdict(
        lambda: ([], [])
    )
    indegree = [np.zeros(int(size), dtype=np.float64) for size in level_sizes]
    for gi, graph in enumerate(graphs):
        for src, dst in graph.edges:
            src_lv, dst_lv = int(level_of[gi][src]), int(level_of[gi][dst])
            src_list, dst_list = edges_by[(dst_lv, src_lv)]
            src_list.append(int(position[gi][src]))
            dst_list.append(int(position[gi][dst]))
            indegree[dst_lv][position[gi][dst]] += 1.0

    levels: list[LevelData] = []
    for lv in range(max_level + 1):
        type_groups = {
            gtype: (
                np.vstack(feats_by[(l, gtype)]),
                np.asarray(pos_by[(l, gtype)], dtype=np.int64),
            )
            for (l, gtype) in feats_by
            if l == lv
        }
        edge_groups = [
            (src_lv, np.asarray(srcs, dtype=np.int64), np.asarray(dsts, dtype=np.int64))
            for (dst_lv, src_lv), (srcs, dsts) in edges_by.items()
            if dst_lv == lv
        ]
        levels.append(
            LevelData(
                n_nodes=int(level_sizes[lv]),
                type_groups=type_groups,
                edge_groups=edge_groups,
                indegree=np.maximum(indegree[lv], 1.0).reshape(-1, 1),
                graph_index=graph_index[lv],
            )
        )

    roots = [
        (int(level_of[gi][graph.root_id]), int(position[gi][graph.root_id]))
        for gi, graph in enumerate(graphs)
    ]
    return GraphBatch(
        levels=levels,
        roots=roots,
        targets=np.asarray(targets, dtype=np.float64),
        n_graphs=len(graphs),
        meta=meta or [{} for _ in graphs],
    )
