"""Prepared graphs and topology caches for the batching pipeline.

Batching a set of joint graphs splits into two phases (DESIGN.md §8):

1. *per-graph preparation* (:func:`prepare_graphs`): topological levels,
   integer-coded node types, per-type feature matrices, and the edge
   array. This depends only on the graph and is computed **once** per
   graph, ever — :class:`PreparedGraphCache` memoizes it by identity.
   Cold batches prepare all their graphs *jointly*: levels come from a
   single vectorized Kahn sweep over the disjoint union and feature
   matrices from one ``np.stack`` per node type across the whole batch,
   so the per-graph numpy overhead is paid once per batch, not 512×.
2. *batch assembly* (:func:`repro.model.batching.make_batch_prepared`):
   pure numpy group-bys over the concatenated prepared arrays.

Training loops, prediction paths, and the fold experiments all funnel
through the module-level default caches so that identical topology is
never recomputed across shards, epochs, folds, or models.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from dataclasses import fields as dataclass_fields

import numpy as np

from repro.core import encoding as enc
from repro.core.joint_graph import JointGraph
from repro.exceptions import ModelError

#: stable integer code per node type (index into ``enc.NODE_TYPES``).
TYPE_CODE: dict[str, int] = {t: i for i, t in enumerate(enc.NODE_TYPES)}
NUM_TYPES = len(enc.NODE_TYPES)

#: monotonically increasing id per :func:`prepare_graphs` call
_PREPARE_TOKEN = 0


def next_prepare_token() -> int:
    """A fresh base token (new prepare call / unpickle / rehydration)."""
    global _PREPARE_TOKEN
    _PREPARE_TOKEN += 1
    return _PREPARE_TOKEN


def group_bounds(sorted_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run keys and [start, stop) bounds of runs in a sorted key array.

    Returns ``(keys, bounds)`` with ``len(bounds) == len(keys) + 1`` —
    the standard follow-up to a stable argsort over a composite group
    key (np.unique would redundantly re-sort).
    """
    n = sorted_keys.size
    if n == 0:
        return sorted_keys, np.zeros(1, dtype=np.int64)
    first = np.concatenate(
        ([0], np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1)
    )
    return sorted_keys[first], np.append(first, n)


def _levels_from_arrays(n_nodes: int, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Vectorized Kahn sweeps over an edge array (possibly a disjoint union).

    Each sweep retires the whole current frontier at once: out-edges are
    expanded through a CSR adjacency with ``np.repeat`` range arithmetic,
    successor levels raised with ``np.maximum.at`` and in-degrees consumed
    with ``np.subtract.at`` — the Python loop runs once per *depth*, not
    once per node or edge.
    """
    level = np.zeros(n_nodes, dtype=np.int64)
    if src.size == 0:
        return level
    indeg = np.bincount(dst, minlength=n_nodes)
    out_counts = np.bincount(src, minlength=n_nodes)
    indptr = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(out_counts, out=indptr[1:])
    sorted_dst = dst[np.argsort(src, kind="stable")]

    frontier = np.flatnonzero(indeg == 0)
    seen = int(frontier.size)
    while frontier.size:
        counts = out_counts[frontier]
        total = int(counts.sum())
        if total == 0:
            break
        starts = indptr[frontier]
        offsets = np.cumsum(counts) - counts
        edge_idx = np.repeat(starts - offsets, counts) + np.arange(total)
        succ = sorted_dst[edge_idx]
        np.maximum.at(level, succ, np.repeat(level[frontier] + 1, counts))
        np.subtract.at(indeg, succ, 1)
        touched = np.unique(succ)
        frontier = touched[indeg[touched] == 0]
        seen += int(frontier.size)
    if seen != n_nodes:
        raise ModelError("graph contains a cycle; joint graphs must be DAGs")
    return level


def compute_levels(n_nodes: int, edges) -> np.ndarray:
    """Longest-path-from-source level per node (vectorized Kahn sweeps)."""
    edge_arr = np.asarray(edges, dtype=np.int64)
    if edge_arr.size == 0:
        return np.zeros(n_nodes, dtype=np.int64)
    edge_arr = edge_arr.reshape(-1, 2)
    return _levels_from_arrays(n_nodes, edge_arr[:, 0], edge_arr[:, 1])


@dataclass(frozen=True)
class PreparedGraph:
    """Per-graph topology, computed once and shared by every batch."""

    n_nodes: int
    #: (n, 5) int64 [level, type code, feature row, rank within level,
    #: row within the shared base matrix] — one contiguous block so
    #: batch assembly concatenates a single array per graph
    node_meta: np.ndarray
    #: topological level per node (n,) — column view of ``node_meta``
    levels: np.ndarray
    max_level: int
    #: integer node-type code per node (n,), index into ``enc.NODE_TYPES``
    type_code: np.ndarray
    #: row of each node inside its type's feature matrix (n,)
    feat_row: np.ndarray
    #: nodes per level (max_level + 1,)
    level_counts: np.ndarray
    #: type code -> (k, feature_dim) float64 matrix, rows in node-id order
    features_by_type: dict[int, np.ndarray]
    #: the shared per-type base matrices of the prepare call this graph
    #: came from; all graphs of one call alias the same dict. Retention
    #: tradeoff: one cached graph keeps its whole call's matrices alive
    #: — at most ~2x the features of the graphs themselves, since call
    #: members are cached and evicted together in practice
    base_matrices: dict[int, np.ndarray]
    #: identifies the prepare call: batches whose graphs all carry the
    #: same token gather features straight from ``base_matrices``
    base_token: int
    #: (e, 4) int64 [src, dst, src level, dst level]
    edge_meta: np.ndarray
    #: (e, 2) int64 edge array — column view of ``edge_meta``
    edges: np.ndarray
    root_id: int
    root_level: int

    # -- pickling ------------------------------------------------------
    # Cache entries must be pickle-stable: a serialized PreparedGraph is
    # self-contained (no alias into its prepare call's shared base
    # matrices, which would drag the whole call's features through the
    # pickle) and base_token never collides across processes (tokens
    # come from a per-process counter, so a shipped token could falsely
    # match a live prepare call in the receiver).
    def __getstate__(self) -> dict:
        state = {f.name: getattr(self, f.name) for f in dataclass_fields(self)}
        # per-graph feature copies instead of views into the shared base
        # (a real .copy(): contiguous slices pass ascontiguousarray
        # unchanged, which would let copy.copy() retain the whole call)
        state["features_by_type"] = {
            code: mat.copy() for code, mat in self.features_by_type.items()
        }
        state["base_matrices"] = None
        state["base_token"] = None
        # column views of node_meta/edge_meta — rebuilt on load
        for name in ("levels", "type_code", "feat_row", "edges"):
            state[name] = None
        return state

    def __setstate__(self, state: dict) -> None:
        # copy before mutating: under copy.copy() the state dict
        # aliases the live source object's arrays
        meta = state["node_meta"] = state["node_meta"].copy()
        edge_meta = state["edge_meta"]
        state["levels"] = meta[:, 0]
        state["type_code"] = meta[:, 1]
        state["feat_row"] = meta[:, 2]
        state["edges"] = edge_meta[:, :2]
        # column 4 held the row inside the prepare call's *shared* type
        # block; the unpickled graph's base is its own per-graph
        # matrices, so the base row is now the per-graph feature row
        # (otherwise the same-token batching fast path would gather
        # rows offset by sibling graphs of the original call)
        meta[:, 4] = meta[:, 2]
        # the graph is its own base: batches of co-unpickled graphs use
        # the general per-graph gather path (distinct fresh tokens)
        state["base_matrices"] = state["features_by_type"]
        state["base_token"] = next_prepare_token()
        for name, value in state.items():
            object.__setattr__(self, name, value)


def prepare_graphs(graphs: list[JointGraph]) -> list[PreparedGraph]:
    """Compute the reusable topology of many graphs in one joint pass."""
    n_graphs = len(graphs)
    if n_graphs == 0:
        return []
    n_per = np.asarray([g.num_nodes for g in graphs], dtype=np.int64)
    node_offset = np.zeros(n_graphs + 1, dtype=np.int64)
    np.cumsum(n_per, out=node_offset[1:])
    n_total = int(node_offset[-1])
    graph_idx = np.repeat(np.arange(n_graphs, dtype=np.int64), n_per)

    edge_arrays = [
        np.asarray(g.edges, dtype=np.int64).reshape(-1, 2) for g in graphs
    ]
    e_per = np.asarray([e.shape[0] for e in edge_arrays], dtype=np.int64)
    if int(e_per.sum()):
        shift = np.repeat(node_offset[:-1], e_per)
        src = np.concatenate([e[:, 0] for e in edge_arrays]) + shift
        dst = np.concatenate([e[:, 1] for e in edge_arrays]) + shift
    else:
        src = dst = np.zeros(0, dtype=np.int64)
    # One Kahn sweep over the disjoint union == per-graph level sets.
    levels_cat = _levels_from_arrays(n_total, src, dst)

    type_cat = np.fromiter(
        (TYPE_CODE[t] for t in itertools.chain.from_iterable(
            g.node_types for g in graphs
        )),
        dtype=np.int64,
        count=n_total,
    )
    type_split = np.split(type_cat, node_offset[1:-1])

    # One np.stack per node type over the whole batch, ordered by
    # (type, graph, node); each graph's per-type matrix is a view slice.
    features_cat: list[np.ndarray] = []
    for g in graphs:
        features_cat.extend(g.features)
    t_order = np.argsort(type_cat, kind="stable")
    per_graph_type_counts = np.zeros((n_graphs, NUM_TYPES), dtype=np.int64)
    np.add.at(per_graph_type_counts, (graph_idx, type_cat), 1)
    type_totals = per_graph_type_counts.sum(axis=0)
    type_block_start = np.zeros(NUM_TYPES + 1, dtype=np.int64)
    np.cumsum(type_totals, out=type_block_start[1:])
    #: offset of graph g's sub-block inside its type block
    graph_block_base = np.zeros_like(per_graph_type_counts)
    np.cumsum(per_graph_type_counts[:-1], axis=0, out=graph_block_base[1:])
    # rank of each node inside its type block, then inside its graph's
    # sub-block == its feature-matrix row
    rank_in_type = np.empty(n_total, dtype=np.int64)
    rank_in_type[t_order] = (
        np.arange(n_total, dtype=np.int64) - type_block_start[type_cat[t_order]]
    )
    feat_row_cat = rank_in_type - graph_block_base[graph_idx, type_cat]

    # rank of each node within its (graph, level) group, in node-id
    # order — batch assembly turns this into batch-local positions with
    # a cumulative per-graph offset instead of re-sorting every call.
    max_all = int(levels_cat.max()) if n_total else 0
    gl_key = graph_idx * np.int64(max_all + 1) + levels_cat
    gl_order = np.argsort(gl_key, kind="stable")
    sorted_gl = gl_key[gl_order]
    is_start = (
        np.concatenate(([True], sorted_gl[1:] != sorted_gl[:-1]))
        if n_total
        else np.zeros(0, dtype=bool)
    )
    group_start = np.flatnonzero(is_start)
    group_id = np.cumsum(is_start) - 1
    rank_in_level = np.empty(n_total, dtype=np.int64)
    rank_in_level[gl_order] = (
        np.arange(n_total, dtype=np.int64) - group_start[group_id]
    )

    node_meta_cat = np.column_stack(
        (levels_cat, type_cat, feat_row_cat, rank_in_level, rank_in_type)
    )
    node_meta_split = np.split(node_meta_cat, node_offset[1:-1])

    if int(e_per.sum()):
        edge_meta_cat = np.column_stack(
            (src - shift, dst - shift, levels_cat[src], levels_cat[dst])
        )
    else:
        edge_meta_cat = np.zeros((0, 4), dtype=np.int64)
    edge_offset = np.zeros(n_graphs + 1, dtype=np.int64)
    np.cumsum(e_per, out=edge_offset[1:])
    edge_meta_split = np.split(edge_meta_cat, edge_offset[1:-1])

    type_matrices: dict[int, np.ndarray] = {}
    for code in np.unique(type_cat):
        code = int(code)
        start, stop = type_block_start[code], type_block_start[code + 1]
        block = t_order[start:stop]
        type_matrices[code] = np.stack(
            [features_cat[i] for i in block]
        ).astype(np.float64, copy=False)

    token = next_prepare_token()
    prepared: list[PreparedGraph] = []
    for gi, graph in enumerate(graphs):
        features_by_type: dict[int, np.ndarray] = {}
        for code in np.unique(type_split[gi]):
            code = int(code)
            base = int(graph_block_base[gi, code])
            count = int(per_graph_type_counts[gi, code])
            features_by_type[code] = type_matrices[code][base : base + count]
        meta = node_meta_split[gi]
        levels = meta[:, 0]
        max_level = int(levels.max()) if levels.size else 0
        edge_meta = edge_meta_split[gi]
        prepared.append(
            PreparedGraph(
                n_nodes=int(n_per[gi]),
                node_meta=meta,
                levels=levels,
                max_level=max_level,
                type_code=meta[:, 1],
                feat_row=meta[:, 2],
                level_counts=np.bincount(levels, minlength=max_level + 1),
                features_by_type=features_by_type,
                base_matrices=type_matrices,
                base_token=token,
                edge_meta=edge_meta,
                edges=edge_meta[:, :2],
                root_id=graph.root_id,
                root_level=int(levels[graph.root_id]) if levels.size else 0,
            )
        )
    return prepared


def prepare_graph(graph: JointGraph) -> PreparedGraph:
    """Compute the reusable topology of one joint graph."""
    return prepare_graphs([graph])[0]


class PreparedGraphCache:
    """Identity-keyed LRU of ``JointGraph -> PreparedGraph``.

    Joint graphs are mutable dataclasses and not hashable, so entries are
    keyed by ``id()``; the graph object is retained in the entry to keep
    the id stable for the lifetime of the cache slot.
    """

    def __init__(self, max_graphs: int = 16384):
        self.max_graphs = max_graphs
        self._entries: OrderedDict[int, tuple[JointGraph, PreparedGraph]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def get(self, graph: JointGraph) -> PreparedGraph:
        return self.get_many([graph])[0]

    def get_many(self, graphs: list[JointGraph]) -> list[PreparedGraph]:
        """Resolve many graphs at once; misses are prepared jointly.

        Entries are keyed by identity, so a graph mutated after first
        batching would otherwise be served stale; node/edge counts are
        cross-checked on every hit and a changed graph is re-prepared.
        (In-place edits of existing feature vectors are not detected —
        joint graphs are built once and never mutated in this codebase.)
        """
        out: list[PreparedGraph | None] = [None] * len(graphs)
        miss_pos: list[int] = []
        miss_ids: set[int] = set()
        for i, graph in enumerate(graphs):
            entry = self._entries.get(id(graph))
            if entry is not None:
                prepared = entry[1]
                if prepared.n_nodes != graph.num_nodes or prepared.edge_meta.shape[
                    0
                ] != len(graph.edges):
                    del self._entries[id(graph)]  # mutated since prepared
                    entry = None
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(id(graph))
                out[i] = entry[1]
            elif id(graph) in miss_ids:
                miss_pos.append(i)  # duplicate object in this very call
            else:
                self.misses += 1
                miss_ids.add(id(graph))
                miss_pos.append(i)
        # first occurrence of each distinct missing graph, in call order
        distinct: list[int] = []
        seen: set[int] = set()
        for i in miss_pos:
            if id(graphs[i]) not in seen:
                seen.add(id(graphs[i]))
                distinct.append(i)
        if distinct:
            fresh: dict[int, PreparedGraph] = {}
            for i, prepared in zip(
                distinct, prepare_graphs([graphs[i] for i in distinct])
            ):
                fresh[id(graphs[i])] = prepared
                self._entries[id(graphs[i])] = (graphs[i], prepared)
            # resolve results before eviction: a call larger than the
            # cache capacity must still return every prepared graph
            for i in miss_pos:
                if out[i] is None:
                    out[i] = fresh[id(graphs[i])]
            while len(self._entries) > self.max_graphs:
                self._entries.popitem(last=False)
        return out  # type: ignore[return-value]

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Occupancy + hit counters (surfaced by the serving stats API)."""
        return {
            "entries": len(self._entries),
            "max_graphs": self.max_graphs,
            "hits": self.hits,
            "misses": self.misses,
        }


class BatchCache:
    """LRU of fully assembled :class:`~repro.model.batching.GraphBatch`.

    Keys are caller-provided tuples (e.g. the ids of the graphs in a
    prediction chunk plus the dtype); ``pins`` holds whatever objects the
    key's ids refer to, so the ids cannot be recycled while cached.
    """

    def __init__(self, max_batches: int = 512):
        self.max_batches = max_batches
        self._entries: OrderedDict[tuple, tuple[object, object]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry[1]

    def put(self, key: tuple, batch, pins: object = None) -> None:
        self._entries[key] = (pins, batch)
        while len(self._entries) > self.max_batches:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_GRAPH_CACHE = PreparedGraphCache()
_BATCH_CACHE = BatchCache()


def default_graph_cache() -> PreparedGraphCache:
    """The process-wide prepared-graph cache."""
    return _GRAPH_CACHE


def default_batch_cache() -> BatchCache:
    """The process-wide assembled-batch cache (prediction chunks)."""
    return _BATCH_CACHE


def clear_caches() -> None:
    """Drop all cached topology (tests / memory pressure)."""
    _GRAPH_CACHE.clear()
    _BATCH_CACHE.clear()
