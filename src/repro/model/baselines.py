"""Baselines of the paper's evaluation (§VI).

* :class:`GracefulModel` — the joint query-UDF GNN (the contribution);
* :class:`FlatGraphBaseline` ("Flat+Graph") — query costs from the
  query-only graph GNN, UDF costs from FlatVector + GBM, summed;
* :class:`GraphGraphBaseline` ("Graph+Graph") — query costs from the
  query-only graph GNN, UDF costs from a *separate* GNN over the isolated
  UDF graph, summed.

Split baselines are trained on split targets (query-part vs UDF-part
runtimes), mirroring the paper: "we also split the training workload and
trained the models separately".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.eval.samples import PreparedSample
from repro.model.flatvector import FlatVectorUDFModel
from repro.model.gbm import GBMConfig
from repro.model.gnn import CostGNN, GNNConfig
from repro.model.training import TrainConfig, predict_runtimes, train_cost_model


@dataclass
class GracefulModel:
    """The joint model: one GNN over the combined query-UDF graph."""

    gnn_config: GNNConfig = field(default_factory=GNNConfig)
    train_config: TrainConfig = field(default_factory=TrainConfig)
    name: str = "GRACEFUL"

    def __post_init__(self) -> None:
        self.model = CostGNN(self.gnn_config)
        self._fitted = False

    def fit(self, samples: "list[PreparedSample]") -> "GracefulModel":
        graphs = [s.joint_graph for s in samples]
        runtimes = np.asarray([s.runtime for s in samples])
        train_cost_model(self.model, graphs, runtimes, self.train_config)
        self._fitted = True
        return self

    def predict(self, samples: "list[PreparedSample]") -> np.ndarray:
        if not self._fitted:
            raise ModelError("GracefulModel.predict before fit")
        return predict_runtimes(self.model, [s.joint_graph for s in samples])


class _QueryPartModel:
    """Shared query-cost GNN of the split baselines."""

    def __init__(self, gnn_config: GNNConfig, train_config: TrainConfig):
        self.model = CostGNN(gnn_config)
        self.train_config = train_config

    def fit(self, samples: "list[PreparedSample]") -> None:
        graphs, targets = [], []
        for s in samples:
            if s.query_graph is None:
                raise ModelError(
                    "split baselines need samples prepared with "
                    "include_baseline_graphs=True"
                )
            graphs.append(s.query_graph)
            targets.append(s.query_runtime)
        train_cost_model(self.model, graphs, np.asarray(targets), self.train_config)

    def predict(self, samples: "list[PreparedSample]") -> np.ndarray:
        return predict_runtimes(self.model, [s.query_graph for s in samples])


@dataclass
class FlatGraphBaseline:
    """FlatVector (UDF) + query-graph GNN, predictions summed."""

    gnn_config: GNNConfig = field(default_factory=GNNConfig)
    train_config: TrainConfig = field(default_factory=TrainConfig)
    gbm_config: GBMConfig = field(default_factory=GBMConfig)
    name: str = "Flat+Graph"

    def __post_init__(self) -> None:
        self.query_model = _QueryPartModel(self.gnn_config, self.train_config)
        self.udf_model = FlatVectorUDFModel(self.gbm_config)
        self._fitted = False

    def fit(self, samples: "list[PreparedSample]") -> "FlatGraphBaseline":
        self.query_model.fit(samples)
        udf_samples = [s for s in samples if s.has_udf]
        if udf_samples:
            self.udf_model.fit(
                [s.udf for s in udf_samples],
                np.asarray([s.udf_runtime for s in udf_samples]),
                np.asarray([s.true_udf_input_rows for s in udf_samples]),
            )
        self._fitted = True
        return self

    def predict(self, samples: "list[PreparedSample]") -> np.ndarray:
        if not self._fitted:
            raise ModelError("FlatGraphBaseline.predict before fit")
        query_pred = self.query_model.predict(samples)
        udf_pred = np.zeros(len(samples))
        udf_idx = [i for i, s in enumerate(samples) if s.has_udf]
        if udf_idx:
            udf_pred[udf_idx] = self.udf_model.predict(
                [samples[i].udf for i in udf_idx],
                np.asarray([samples[i].est_udf_input_rows for i in udf_idx]),
            )
        return query_pred + udf_pred


@dataclass
class GraphGraphBaseline:
    """Isolated UDF-graph GNN + query-graph GNN, predictions summed."""

    gnn_config: GNNConfig = field(default_factory=GNNConfig)
    train_config: TrainConfig = field(default_factory=TrainConfig)
    name: str = "Graph+Graph"

    def __post_init__(self) -> None:
        self.query_model = _QueryPartModel(self.gnn_config, self.train_config)
        self.udf_model = CostGNN(self.gnn_config)
        self._fitted = False

    def fit(self, samples: "list[PreparedSample]") -> "GraphGraphBaseline":
        self.query_model.fit(samples)
        udf_samples = [s for s in samples if s.has_udf and s.udf_graph is not None]
        if udf_samples:
            train_cost_model(
                self.udf_model,
                [s.udf_graph for s in udf_samples],
                np.asarray([max(s.udf_runtime, 1e-9) for s in udf_samples]),
                self.train_config,
            )
        self._fitted = True
        return self

    def predict(self, samples: "list[PreparedSample]") -> np.ndarray:
        if not self._fitted:
            raise ModelError("GraphGraphBaseline.predict before fit")
        query_pred = self.query_model.predict(samples)
        udf_pred = np.zeros(len(samples))
        udf_idx = [
            i for i, s in enumerate(samples) if s.has_udf and s.udf_graph is not None
        ]
        if udf_idx:
            udf_pred[udf_idx] = predict_runtimes(
                self.udf_model, [samples[i].udf_graph for i in udf_idx]
            )
        return query_pred + udf_pred
