"""Gradient-boosted regression trees (the XGBoost substitute).

Histogram-based: features are quantile-binned once (256 bins), then each
tree node finds the best split by accumulating gradient sums per bin —
the same core algorithm as LightGBM/XGBoost-hist, scaled down. Squared
loss, shrinkage, and row subsampling are supported; that is everything the
FlatVector baseline of the paper needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError

_MAX_BINS = 256


@dataclass
class _TreeNode:
    feature: int = -1
    threshold_bin: int = -1
    left: int = -1
    right: int = -1
    value: float = 0.0
    is_leaf: bool = True


@dataclass
class GBMConfig:
    n_estimators: int = 200
    learning_rate: float = 0.1
    max_depth: int = 5
    min_samples_leaf: int = 5
    subsample: float = 0.9
    min_gain: float = 1e-12
    seed: int = 0


class GBMRegressor:
    """Gradient boosting with histogram regression trees."""

    def __init__(self, config: GBMConfig | None = None):
        self.config = config or GBMConfig()
        self._trees: list[list[_TreeNode]] = []
        self._bin_edges: list[np.ndarray] = []
        self._base: float = 0.0
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GBMRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y):
            raise ModelError(f"bad shapes X={X.shape} y={y.shape}")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        binned = self._bin_features(X)
        self._base = float(y.mean()) if len(y) else 0.0
        prediction = np.full(len(y), self._base)
        self._trees = []
        for _ in range(cfg.n_estimators):
            residual = y - prediction
            if cfg.subsample < 1.0:
                mask = rng.random(len(y)) < cfg.subsample
                if not mask.any():
                    mask[:] = True
                idx = np.where(mask)[0]
            else:
                idx = np.arange(len(y))
            tree = self._build_tree(binned, residual, idx)
            self._trees.append(tree)
            prediction += cfg.learning_rate * self._predict_tree(tree, binned)
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise ModelError("GBMRegressor.predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        binned = self._apply_bins(X)
        out = np.full(len(X), self._base)
        for tree in self._trees:
            out += self.config.learning_rate * self._predict_tree(tree, binned)
        return out

    # ------------------------------------------------------------------
    def _bin_features(self, X: np.ndarray) -> np.ndarray:
        self._bin_edges = []
        binned = np.empty(X.shape, dtype=np.int64)
        for j in range(X.shape[1]):
            col = X[:, j]
            quantiles = np.unique(
                np.quantile(col, np.linspace(0, 1, _MAX_BINS + 1)[1:-1])
            )
            self._bin_edges.append(quantiles)
            binned[:, j] = np.searchsorted(quantiles, col, side="left")
        return binned

    def _apply_bins(self, X: np.ndarray) -> np.ndarray:
        binned = np.empty(X.shape, dtype=np.int64)
        for j in range(X.shape[1]):
            binned[:, j] = np.searchsorted(self._bin_edges[j], X[:, j], side="left")
        return binned

    def _build_tree(
        self, binned: np.ndarray, residual: np.ndarray, idx: np.ndarray
    ) -> list[_TreeNode]:
        cfg = self.config
        nodes: list[_TreeNode] = []

        def grow(sample_idx: np.ndarray, depth: int) -> int:
            node_id = len(nodes)
            node = _TreeNode(value=float(residual[sample_idx].mean()))
            nodes.append(node)
            if depth >= cfg.max_depth or len(sample_idx) < 2 * cfg.min_samples_leaf:
                return node_id
            best = self._best_split(binned, residual, sample_idx)
            if best is None:
                return node_id
            feature, threshold_bin = best
            go_left = binned[sample_idx, feature] <= threshold_bin
            left_idx = sample_idx[go_left]
            right_idx = sample_idx[~go_left]
            min_leaf = cfg.min_samples_leaf
            if len(left_idx) < min_leaf or len(right_idx) < min_leaf:
                return node_id
            node.is_leaf = False
            node.feature = feature
            node.threshold_bin = threshold_bin
            node.left = grow(left_idx, depth + 1)
            node.right = grow(right_idx, depth + 1)
            return node_id

        grow(idx, 0)
        return nodes

    def _best_split(
        self, binned: np.ndarray, residual: np.ndarray, idx: np.ndarray
    ) -> tuple[int, int] | None:
        cfg = self.config
        g = residual[idx]
        total_sum = g.sum()
        total_cnt = len(idx)
        parent_score = total_sum * total_sum / total_cnt
        best_gain = cfg.min_gain
        best: tuple[int, int] | None = None
        for feature in range(binned.shape[1]):
            bins = binned[idx, feature]
            n_bins = int(bins.max()) + 1
            if n_bins <= 1:
                continue
            sums = np.bincount(bins, weights=g, minlength=n_bins)
            counts = np.bincount(bins, minlength=n_bins)
            left_sum = np.cumsum(sums)[:-1]
            left_cnt = np.cumsum(counts)[:-1]
            right_sum = total_sum - left_sum
            right_cnt = total_cnt - left_cnt
            valid = (left_cnt >= cfg.min_samples_leaf) & (
                right_cnt >= cfg.min_samples_leaf
            )
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                gains = (
                    left_sum**2 / np.maximum(left_cnt, 1)
                    + right_sum**2 / np.maximum(right_cnt, 1)
                    - parent_score
                )
            gains[~valid] = -np.inf
            k = int(np.argmax(gains))
            if gains[k] > best_gain:
                best_gain = float(gains[k])
                best = (feature, k)
        return best

    def _predict_tree(self, tree: list[_TreeNode], binned: np.ndarray) -> np.ndarray:
        out = np.empty(len(binned))
        for i in range(len(binned)):
            node = tree[0]
            while not node.is_leaf:
                if binned[i, node.feature] <= node.threshold_bin:
                    node = tree[node.left]
                else:
                    node = tree[node.right]
            out[i] = node.value
        return out
