"""Retained reference implementation of the pre-vectorization batching.

This module preserves, verbatim, the original pure-Python ``compute_levels``
and ``make_batch`` that :mod:`repro.model.batching` replaced with vectorized
numpy group-bys (DESIGN.md §8). It exists for two reasons:

* the equivalence tests (``tests/test_model_batching_equiv.py``) assert that
  the vectorized pipeline reproduces this implementation's level structure
  byte-for-byte and its forward/backward results to float64 precision;
* the perf benchmark (``benchmarks/test_perf_pipeline.py``) measures the
  vectorized pipeline's speedup against this baseline.

Do not use it in production paths — it re-runs per-node and per-edge Python
loops on every call.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.joint_graph import JointGraph
from repro.exceptions import ModelError
from repro.model.batching import GraphBatch, LevelData


def reference_compute_levels(
    n_nodes: int, edges: list[tuple[int, int]]
) -> np.ndarray:
    """Longest-path-from-source level per node (scalar Kahn's algorithm)."""
    indeg = np.zeros(n_nodes, dtype=np.int64)
    succs: dict[int, list[int]] = defaultdict(list)
    for src, dst in edges:
        indeg[dst] += 1
        succs[src].append(dst)
    level = np.zeros(n_nodes, dtype=np.int64)
    queue = [i for i in range(n_nodes) if indeg[i] == 0]
    seen = 0
    while queue:
        node = queue.pop()
        seen += 1
        for succ in succs.get(node, ()):
            level[succ] = max(level[succ], level[node] + 1)
            indeg[succ] -= 1
            if indeg[succ] == 0:
                queue.append(succ)
    if seen != n_nodes:
        raise ModelError("graph contains a cycle; joint graphs must be DAGs")
    return level


def reference_make_batch(
    graphs: list[JointGraph],
    targets: np.ndarray | list[float],
    meta: list[dict] | None = None,
) -> GraphBatch:
    """Merge graphs into one level-indexed batch (per-node Python loops)."""
    if not graphs:
        raise ModelError("cannot batch zero graphs")
    # Global ids: (graph_index, node_id) -> (level, local position).
    level_of: list[np.ndarray] = []
    for graph in graphs:
        level_of.append(reference_compute_levels(graph.num_nodes, graph.edges))
    max_level = int(max(lv.max() if len(lv) else 0 for lv in level_of))

    # Assign local positions per level.
    position: list[np.ndarray] = []
    level_sizes = np.zeros(max_level + 1, dtype=np.int64)
    for gi, graph in enumerate(graphs):
        pos = np.zeros(graph.num_nodes, dtype=np.int64)
        for node in range(graph.num_nodes):
            lv = level_of[gi][node]
            pos[node] = level_sizes[lv]
            level_sizes[lv] += 1
        position.append(pos)

    # Group node features by (level, type); track each node's graph.
    feats_by: dict[tuple[int, str], list[np.ndarray]] = defaultdict(list)
    pos_by: dict[tuple[int, str], list[int]] = defaultdict(list)
    graph_index = [np.zeros(int(size), dtype=np.int64) for size in level_sizes]
    for gi, graph in enumerate(graphs):
        for node in range(graph.num_nodes):
            lv = int(level_of[gi][node])
            gtype = graph.node_types[node]
            feats_by[(lv, gtype)].append(graph.features[node])
            pos_by[(lv, gtype)].append(int(position[gi][node]))
            graph_index[lv][position[gi][node]] = gi

    # Group edges by (dst level, src level).
    edges_by: dict[tuple[int, int], tuple[list[int], list[int]]] = defaultdict(
        lambda: ([], [])
    )
    indegree = [np.zeros(int(size), dtype=np.float64) for size in level_sizes]
    for gi, graph in enumerate(graphs):
        for src, dst in graph.edges:
            src_lv, dst_lv = int(level_of[gi][src]), int(level_of[gi][dst])
            src_list, dst_list = edges_by[(dst_lv, src_lv)]
            src_list.append(int(position[gi][src]))
            dst_list.append(int(position[gi][dst]))
            indegree[dst_lv][position[gi][dst]] += 1.0

    levels: list[LevelData] = []
    for lv in range(max_level + 1):
        type_groups = {
            gtype: (
                np.vstack(feats_by[(l, gtype)]),
                np.asarray(pos_by[(l, gtype)], dtype=np.int64),
            )
            for (l, gtype) in feats_by
            if l == lv
        }
        edge_groups = [
            (src_lv, np.asarray(srcs, dtype=np.int64), np.asarray(dsts, dtype=np.int64))
            for (dst_lv, src_lv), (srcs, dsts) in edges_by.items()
            if dst_lv == lv
        ]
        levels.append(
            LevelData(
                n_nodes=int(level_sizes[lv]),
                type_groups=type_groups,
                edge_groups=edge_groups,
                indegree=np.maximum(indegree[lv], 1.0).reshape(-1, 1),
                graph_index=graph_index[lv],
            )
        )

    roots = [
        (int(level_of[gi][graph.root_id]), int(position[gi][graph.root_id]))
        for gi, graph in enumerate(graphs)
    ]
    root_levels = np.asarray([lv for lv, _ in roots], dtype=np.int64)
    root_positions = np.asarray([pos for _, pos in roots], dtype=np.int64)
    return GraphBatch(
        levels=levels,
        roots=roots,
        targets=np.asarray(targets, dtype=np.float64),
        n_graphs=len(graphs),
        root_levels=root_levels,
        root_positions=root_positions,
        meta=meta or [{} for _ in graphs],
    )
