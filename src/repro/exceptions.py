"""Exception hierarchy for the GRACEFUL reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything this package raises with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A table, column, or database definition is invalid or missing."""


class ExecutionError(ReproError):
    """A query plan failed during execution."""


class PlanError(ReproError):
    """A query plan is structurally invalid (e.g. unbound column)."""


class UDFError(ReproError):
    """A UDF could not be parsed, interpreted, or generated."""


class CFGError(UDFError):
    """A control-flow graph could not be built or transformed."""


class EstimationError(ReproError):
    """A cardinality or cost estimate could not be produced."""


class ModelError(ReproError):
    """A learned model was misconfigured or used before fitting."""


class ServingError(ReproError):
    """The online serving layer rejected a request (closed engine,
    unknown model version, malformed payload, ...)."""


class FeedbackError(ReproError):
    """The feedback loop could not proceed (empty replay buffer, too few
    trainable samples, unknown decision id, ...)."""
