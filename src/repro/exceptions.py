"""Exception hierarchy for the GRACEFUL reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything this package raises with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A table, column, or database definition is invalid or missing."""


class ExecutionError(ReproError):
    """A query plan failed during execution."""


class PlanError(ReproError):
    """A query plan is structurally invalid (e.g. unbound column)."""


class UDFError(ReproError):
    """A UDF could not be parsed, interpreted, or generated."""


class CFGError(UDFError):
    """A control-flow graph could not be built or transformed."""


class EstimationError(ReproError):
    """A cardinality or cost estimate could not be produced."""


class ModelError(ReproError):
    """A learned model was misconfigured or used before fitting."""


class ServingError(ReproError):
    """The online serving layer rejected a request (closed engine,
    unknown model version, malformed payload, ...)."""


class BackendUnavailable(ServingError):
    """An execution backend cannot be constructed on this host — its
    driver package (e.g. ``duckdb``) is not installed, or the requested
    name is not registered. The message names the missing dependency and
    the extra that provides it (``pip install repro[duckdb]``)."""


class EngineOverloaded(ServingError):
    """Admission control shed the request: the bounded queue is full.

    Maps to HTTP 503 + ``Retry-After`` — the client should back off and
    retry; nothing about the request itself was wrong."""


class EngineClosed(ServingError):
    """The engine is draining or closed; no new work is admitted."""


class DeadlineExceeded(ServingError):
    """The request's deadline expired before a forward pass was paid for
    it; the engine shed it from the queue instead of computing a result
    nobody is waiting for. Maps to HTTP 504."""


class WorkerCrashed(ServingError):
    """A shard worker thread died with this request in flight. The shard
    supervisor fails the stranded futures with this error so callers can
    retry on a healthy shard instead of hanging forever."""


class FeedbackError(ReproError):
    """The feedback loop could not proceed (empty replay buffer, too few
    trainable samples, unknown decision id, ...)."""
