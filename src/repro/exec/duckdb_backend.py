"""Real-engine execution: plans rendered to SQL and run on DuckDB.

The backend exports the in-memory :mod:`repro.storage` tables into a
DuckDB database, registers generated Python UDFs via
``create_function``, renders each plan with
:func:`repro.sql.render.plan_to_sql`, and measures wall-clock per
query. NULL semantics line up by construction: DuckDB's default null
handling skips the Python UDF on NULL inputs (NULL in → NULL out), and
the registered wrapper converts runtime errors to NULL — both exactly
what :meth:`UDF.evaluate_batch` does on the simulator.

``duckdb`` itself is an optional extra (``pip install repro[duckdb]``);
importing this module is always safe, constructing the backend without
the driver raises :class:`~repro.exceptions.BackendUnavailable`.
"""

from __future__ import annotations

import importlib.util
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import BackendUnavailable, ExecutionError
from repro.exec.backend import ExecutionBackend, register_backend
from repro.sql.executor import ExecutionResult
from repro.sql.plan import PlanNode, UDFFilter, UDFProject
from repro.sql.relation import Relation
from repro.sql.render import plan_to_sql, quote_ident
from repro.storage.column import Column
from repro.storage.database import Database
from repro.storage.datatypes import DataType
from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover - see repro.exec.backend: importing
    # the udf package at module scope would close an import cycle
    from repro.udf.udf import UDF

#: storage type -> DuckDB SQL type
DUCKDB_TYPES: dict[DataType, str] = {
    DataType.INT: "BIGINT",
    DataType.FLOAT: "DOUBLE",
    DataType.STRING: "VARCHAR",
}

#: rows per executemany chunk when loading tables
_INSERT_CHUNK = 10_000


def duckdb_missing_reason() -> str | None:
    """None when the duckdb package is importable, else the fix."""
    if importlib.util.find_spec("duckdb") is None:
        return (
            "the 'duckdb' package is not installed "
            "(pip install repro[duckdb])"
        )
    return None


def _require_duckdb():
    reason = duckdb_missing_reason()
    if reason is not None:
        raise BackendUnavailable(f"backend 'duckdb' is unavailable: {reason}")
    import duckdb

    return duckdb


class DuckDBBackend(ExecutionBackend):
    """Executes plans on DuckDB with registered Python UDFs."""

    name = "duckdb"

    def __init__(self, database: Database, path: str = ":memory:"):
        from repro.udf.trace import InvocationCounter  # deferred: cycle

        duckdb = _require_duckdb()
        super().__init__(database)
        self._conn = duckdb.connect(path)
        self._counter = InvocationCounter()
        #: UDF name -> source registered under that name. Generated UDF
        #: names are process-unique, but hand-built tests may reuse one;
        #: re-registering a different body under a live name would
        #: silently answer with the old function.
        self._registered: dict[str, str] = {}
        for table in database.tables.values():
            self._load_table(table)

    # ------------------------------------------------------------------
    def _load_table(self, table: Table) -> None:
        decls = ", ".join(
            f"{quote_ident(col.name)} {DUCKDB_TYPES[col.dtype]}"
            for col in table.columns
        )
        self._conn.execute(f"CREATE TABLE {quote_ident(table.name)} ({decls})")
        if len(table) == 0 or not table.columns:
            return
        placeholders = ", ".join("?" for _ in table.columns)
        insert = f"INSERT INTO {quote_ident(table.name)} VALUES ({placeholders})"
        rows = [
            tuple(col.python_value(i) for col in table.columns)
            for i in range(len(table))
        ]
        for start in range(0, len(rows), _INSERT_CHUNK):
            self._conn.executemany(insert, rows[start : start + _INSERT_CHUNK])

    def _ensure_udf(self, udf: "UDF") -> None:
        registered_source = self._registered.get(udf.name)
        if registered_source == udf.source:
            return
        if registered_source is not None:
            self._conn.remove_function(udf.name)
        compiled = udf.compiled
        function = compiled.function
        n_blocks = compiled.n_blocks
        counter = self._counter

        def wrapper(*args):
            counter.add()
            local = [0] * n_blocks
            try:
                return function(local, *args)
            except Exception:  # noqa: BLE001 - runtime errors yield NULL
                return None

        self._conn.create_function(
            udf.name,
            wrapper,
            [DUCKDB_TYPES[t] for t in udf.arg_types],
            DUCKDB_TYPES[udf.return_type],
        )
        self._registered[udf.name] = udf.source

    # ------------------------------------------------------------------
    def execute(self, root: PlanNode, noise_seed: int | None = None) -> ExecutionResult:
        """Render, run, and time the plan. ``noise_seed`` is ignored —
        wall-clock jitter here is physical, not simulated."""
        sql = plan_to_sql(root, self.database)  # raises on UDFAggregate
        for node in root.walk():
            if isinstance(node, (UDFFilter, UDFProject)):
                self._ensure_udf(node.udf)
        invocations_before = self._counter.count
        start = time.perf_counter()
        try:
            cursor = self._conn.execute(sql)
            rows = cursor.fetchall()
        except Exception as exc:
            raise ExecutionError(f"duckdb failed on rendered SQL: {exc}\n{sql}") from exc
        runtime = time.perf_counter() - start
        names = [d[0] for d in cursor.description]
        relation = _relation_from_rows(names, rows)
        counters = self._counter.to_counters(since=invocations_before)
        # A real engine only shows the final result set; per-operator
        # cardinalities stay on the simulator.
        true_cards = {root.node_id: len(rows)}
        return ExecutionResult(relation, counters, runtime, true_cards)

    def run_sql(self, sql: str) -> list[tuple]:
        """Escape hatch for harnesses: run raw SQL, return all rows."""
        return self._conn.execute(sql).fetchall()

    def close(self) -> None:
        self._conn.close()


def _relation_from_rows(names: list[str], rows: list[tuple]) -> Relation:
    """A :class:`Relation` from a fetched DuckDB result set."""
    columns: dict[str, Column] = {}
    for j, name in enumerate(names):
        cell_values = [row[j] for row in rows]
        valid = np.array([v is not None for v in cell_values], dtype=bool)
        non_null = [v for v in cell_values if v is not None]
        if non_null and all(isinstance(v, str) for v in non_null):
            dtype = DataType.STRING
            data = np.array(
                [v if v is not None else "" for v in cell_values], dtype=object
            )
        elif non_null and all(isinstance(v, int) for v in non_null):
            dtype = DataType.INT
            data = np.array(
                [v if v is not None else 0 for v in cell_values], dtype=np.int64
            )
        else:
            dtype = DataType.FLOAT
            data = np.array(
                [float(v) if v is not None else 0.0 for v in cell_values],
                dtype=np.float64,
            )
        columns[name] = Column(name, dtype, data, valid)
    return Relation(columns)


register_backend(
    "duckdb", DuckDBBackend, probe=duckdb_missing_reason
)
