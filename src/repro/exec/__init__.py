"""Pluggable execution backends (DESIGN.md §13).

Importing this package registers the built-in backends: ``simulator``
always, ``duckdb`` whenever its optional driver is installed (probed at
creation time, so the import itself never fails).
"""

from repro.exec.backend import (
    BACKEND_ENV_VAR,
    ExecutionBackend,
    available_backends,
    backend_available,
    create_backend,
    default_backend_name,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.exec.duckdb_backend import DuckDBBackend
from repro.exec.schema_gen import (
    StarSchemaConfig,
    generate_star_database,
    schema_config_from_scale,
)
from repro.exec.simulator import SimulatorBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "DuckDBBackend",
    "ExecutionBackend",
    "SimulatorBackend",
    "StarSchemaConfig",
    "available_backends",
    "backend_available",
    "create_backend",
    "default_backend_name",
    "generate_star_database",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "schema_config_from_scale",
]
