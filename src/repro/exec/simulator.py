"""The calibrated toy engine behind the backend seam.

A pure refactor of direct :class:`~repro.sql.executor.Executor` use:
identical relations, counters, runtimes, and ``true_card`` annotations
(the executor still writes them onto the plan nodes), so resultstore
fingerprints and every cached benchmark stay valid.
"""

from __future__ import annotations

from repro.exec.backend import ExecutionBackend, register_backend
from repro.sql.executor import ExecutionResult, Executor
from repro.sql.plan import PlanNode
from repro.storage.database import Database


class SimulatorBackend(ExecutionBackend):
    """Runs plans on the in-repo vectorized executor + cost model."""

    name = "simulator"

    def __init__(self, database: Database):
        super().__init__(database)
        self._executor = Executor(database)

    def execute(self, root: PlanNode, noise_seed: int | None = None) -> ExecutionResult:
        return self._executor.execute(root, noise_seed=noise_seed)


register_backend("simulator", SimulatorBackend)
