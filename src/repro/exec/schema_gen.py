"""TPC-DS-flavored star-schema generator for real-engine benchmarks.

The twenty paper datasets (:mod:`repro.storage.generator`) have random
shapes; this module generates one *recognizable* analytics schema — a
``store_sales`` fact ringed by ``date_dim`` / ``item`` / ``customer`` /
``store`` / ``promotion`` dimensions with TPC-DS column prefixes — so
realbench workloads look like the multi-table analytics the paper
targets. Unlike the random generator, columns are deliberately
*correlated*:

* fact measures derive from the joined item row (wholesale cost and
  list price flow through the FK), so filter selectivities interact
  across the join exactly where independence assumptions break;
* the date FK is seasonal (monthly sine + yearly growth) and the item
  and customer FKs are Zipf-skewed, giving joins realistic hot keys;
* ``ss_net_profit`` is a noisy function of price minus cost — the kind
  of derived column UDFs love to recompute.

Everything is seeded and sized by :class:`StarSchemaConfig`;
:func:`schema_config_from_scale` maps an
:class:`~repro.eval.experiments.ExperimentScale` onto one (duck-typed,
to keep this module import-light).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.column import Column
from repro.storage.database import Database, ForeignKey
from repro.storage.datatypes import DataType
from repro.storage.generator import _zipf_values, hash_name
from repro.storage.table import Table

_CATEGORIES = (
    "Books", "Electronics", "Home", "Jewelry", "Music",
    "Shoes", "Sports", "Children", "Men", "Women",
)
_MARKETS = ("primary", "secondary", "tertiary", "rural", "metro")
_CREDIT_RATINGS = ("Low Risk", "Good", "High Risk", "Unknown")
_QUARTERS = ("Q1", "Q2", "Q3", "Q4")
_CHANNELS = ("email", "tv", "radio", "press", "event")


@dataclass(frozen=True)
class StarSchemaConfig:
    """Size and shape knobs of one generated star schema."""

    fact_rows: int = 20_000
    date_rows: int = 1_095  # three years of days
    item_rows: int = 1_000
    customer_rows: int = 2_000
    store_rows: int = 60
    promotion_rows: int = 120
    seed: int = 0
    #: Zipf exponent of the item/customer FK fan-out (hot products).
    zipf_a: float = 1.5
    #: NULL fraction on nullable fact measures and the promotion FK.
    null_fraction: float = 0.03
    name: str = "tpcds_star"


def schema_config_from_scale(scale) -> StarSchemaConfig:
    """A :class:`StarSchemaConfig` sized like an ``ExperimentScale``.

    Uses the scale's generator override (its ``scale`` multiplier) and
    seed; any object with ``generator``/``seed`` attributes works.
    """
    generator = getattr(scale, "generator", None)
    factor = float(getattr(generator, "scale", 1.0) or 1.0) if generator else 1.0
    base = StarSchemaConfig()
    return StarSchemaConfig(
        fact_rows=max(1_000, int(base.fact_rows * factor)),
        date_rows=max(90, int(base.date_rows * min(factor, 1.0))),
        item_rows=max(100, int(base.item_rows * factor)),
        customer_rows=max(100, int(base.customer_rows * factor)),
        store_rows=max(10, int(base.store_rows * min(factor, 1.0))),
        promotion_rows=max(20, int(base.promotion_rows * min(factor, 1.0))),
        seed=int(getattr(scale, "seed", 0)),
    )


def _int_col(name: str, values, valid=None) -> Column:
    return Column(name, DataType.INT, np.asarray(values, dtype=np.int64), valid)


def _float_col(name: str, values, valid=None) -> Column:
    return Column(name, DataType.FLOAT, np.asarray(values, dtype=np.float64), valid)


def _str_col(name: str, values, valid=None) -> Column:
    return Column(name, DataType.STRING, np.asarray(values, dtype=object), valid)


def _rng(config: StarSchemaConfig, table: str) -> np.random.Generator:
    return np.random.default_rng(hash_name(f"{config.name}/{config.seed}/{table}"))


# ----------------------------------------------------------------------
def _date_dim(config: StarSchemaConfig) -> Table:
    n = config.date_rows
    day = np.arange(n)
    year = 1998 + day // 365
    moy = (day % 365) // 31 + 1
    dom = day % 28 + 1
    quarter = [f"{y}{_QUARTERS[(m - 1) // 3]}" for y, m in zip(year, moy)]
    return Table(
        "date_dim",
        [
            _int_col("d_date_sk", day),
            _int_col("d_year", year),
            _int_col("d_moy", moy),
            _int_col("d_dom", dom),
            _str_col("d_quarter_name", quarter),
        ],
    )


def _item(config: StarSchemaConfig) -> Table:
    rng = _rng(config, "item")
    n = config.item_rows
    category_id = _zipf_values(rng, n, len(_CATEGORIES), 1.3)
    category = [_CATEGORIES[i] for i in category_id]
    # Brands nest inside categories (TPC-DS's i_brand ~ i_category
    # hierarchy): knowing the brand pins the category.
    brand_local = rng.integers(1, 6, size=n)
    brand = [f"{_CATEGORIES[c][:4].lower()}brand#{b}" for c, b in zip(category_id, brand_local)]
    # Price level is driven by a per-category latent factor, so price
    # correlates with category; wholesale cost is a noisy 50-80% of it.
    category_factor = np.exp(rng.normal(0.0, 0.5, size=len(_CATEGORIES)))
    price = np.round(
        np.exp(rng.normal(2.5, 0.6, size=n)) * category_factor[category_id], 2
    )
    wholesale = np.round(price * rng.uniform(0.5, 0.8, size=n), 2)
    return Table(
        "item",
        [
            _int_col("i_item_sk", np.arange(n)),
            _str_col("i_category", category),
            _str_col("i_brand", brand),
            _float_col("i_current_price", price),
            _float_col("i_wholesale_cost", wholesale),
        ],
    )


def _customer(config: StarSchemaConfig) -> Table:
    rng = _rng(config, "customer")
    n = config.customer_rows
    birth_year = rng.integers(1930, 2005, size=n)
    preferred = np.where(rng.random(n) < 0.35, "Y", "N")
    # Credit rating skews with age: older customers rate "Good" more
    # often — a cross-column correlation for the estimators to miss.
    old = birth_year < 1970
    rating_idx = np.where(
        old, _zipf_values(rng, n, 4, 2.2), _zipf_values(rng, n, 4, 1.1)
    )
    rating = [_CREDIT_RATINGS[i] for i in rating_idx]
    return Table(
        "customer",
        [
            _int_col("c_customer_sk", np.arange(n)),
            _int_col("c_birth_year", birth_year),
            _str_col("c_preferred_cust_flag", preferred),
            _str_col("c_credit_rating", rating),
        ],
    )


def _store(config: StarSchemaConfig) -> Table:
    rng = _rng(config, "store")
    n = config.store_rows
    employees = rng.integers(50, 300, size=n)
    floor_space = employees * rng.integers(40, 80, size=n)
    market = [_MARKETS[i] for i in _zipf_values(rng, n, len(_MARKETS), 1.2)]
    return Table(
        "store",
        [
            _int_col("s_store_sk", np.arange(n)),
            _int_col("s_number_employees", employees),
            _int_col("s_floor_space", floor_space),
            _str_col("s_market_desc", market),
        ],
    )


def _promotion(config: StarSchemaConfig) -> Table:
    rng = _rng(config, "promotion")
    n = config.promotion_rows
    channel = [_CHANNELS[i] for i in _zipf_values(rng, n, len(_CHANNELS), 1.4)]
    cost = np.round(np.exp(rng.normal(6.0, 1.0, size=n)), 2)
    target = rng.integers(100, 100_000, size=n)
    return Table(
        "promotion",
        [
            _int_col("p_promo_sk", np.arange(n)),
            _str_col("p_channel", channel),
            _float_col("p_cost", cost),
            _int_col("p_response_target", target),
        ],
    )


def _seasonal_date_fks(
    rng: np.random.Generator, n: int, date_rows: int
) -> np.ndarray:
    """Date FKs with monthly seasonality and year-over-year growth."""
    day = np.arange(date_rows, dtype=np.float64)
    season = 1.0 + 0.45 * np.sin(2.0 * np.pi * (day % 365) / 365.0)
    growth = 1.0 + 0.25 * (day / max(date_rows - 1, 1))
    weights = season * growth
    weights /= weights.sum()
    return rng.choice(date_rows, size=n, p=weights)


def _store_sales(config: StarSchemaConfig, item: Table) -> Table:
    rng = _rng(config, "store_sales")
    n = config.fact_rows
    date_fk = _seasonal_date_fks(rng, n, config.date_rows)
    item_fk = _zipf_values(rng, n, config.item_rows, config.zipf_a)
    customer_fk = _zipf_values(rng, n, config.customer_rows, config.zipf_a)
    store_fk = _zipf_values(rng, n, config.store_rows, 1.15)
    promo_fk = _zipf_values(rng, n, config.promotion_rows, 1.3)
    promo_valid = rng.random(n) >= config.null_fraction

    quantity = rng.integers(1, 101, size=n)
    item_price = item.column("i_current_price").values[item_fk]
    item_cost = item.column("i_wholesale_cost").values[item_fk]
    list_price = np.round(item_price * rng.uniform(0.95, 1.1, size=n), 2)
    # Promoted sales discount deeper — sales price correlates with the
    # promotion FK's validity, a join-dependent correlation.
    discount = np.where(
        promo_valid, rng.uniform(0.05, 0.45, size=n), rng.uniform(0.0, 0.15, size=n)
    )
    sales_price = np.round(list_price * (1.0 - discount), 2)
    wholesale_cost = np.round(item_cost * rng.uniform(0.98, 1.02, size=n), 2)
    net_profit = np.round(
        (sales_price - wholesale_cost) * quantity + rng.normal(0.0, 2.0, size=n), 2
    )
    coupon_valid = rng.random(n) >= config.null_fraction
    coupon = np.round(np.abs(rng.normal(3.0, 4.0, size=n)), 2)
    return Table(
        "store_sales",
        [
            _int_col("ss_id", np.arange(n)),
            _int_col("ss_sold_date_sk", date_fk),
            _int_col("ss_item_sk", item_fk),
            _int_col("ss_customer_sk", customer_fk),
            _int_col("ss_store_sk", store_fk),
            _int_col("ss_promo_sk", promo_fk, promo_valid),
            _int_col("ss_quantity", quantity),
            _float_col("ss_wholesale_cost", wholesale_cost),
            _float_col("ss_list_price", list_price),
            _float_col("ss_sales_price", sales_price),
            _float_col("ss_net_profit", net_profit),
            _float_col("ss_coupon_amt", coupon, coupon_valid),
        ],
    )


def generate_star_database(config: StarSchemaConfig | None = None) -> Database:
    """Generate the star schema as a :class:`Database` with FK edges."""
    config = config or StarSchemaConfig()
    item = _item(config)
    tables = [
        _store_sales(config, item),
        _date_dim(config),
        item,
        _customer(config),
        _store(config),
        _promotion(config),
    ]
    fks = [
        ForeignKey("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
        ForeignKey("store_sales", "ss_item_sk", "item", "i_item_sk"),
        ForeignKey("store_sales", "ss_customer_sk", "customer", "c_customer_sk"),
        ForeignKey("store_sales", "ss_store_sk", "store", "s_store_sk"),
        ForeignKey("store_sales", "ss_promo_sk", "promotion", "p_promo_sk"),
    ]
    return Database(config.name, tables, fks)
