"""The execution backend seam (DESIGN.md §13).

Everything that *runs a plan* — the benchmark builder, the feedback
observer, the actual-cardinality estimator, the realbench driver — goes
through :class:`ExecutionBackend` instead of constructing
:class:`~repro.sql.executor.Executor` directly. Two implementations
ship:

* ``simulator`` (:mod:`repro.exec.simulator`) — the calibrated toy
  engine behind the interface, byte-identical to direct executor use;
* ``duckdb`` (:mod:`repro.exec.duckdb_backend`) — renders plans to SQL
  and measures real wall-clock on DuckDB, when the ``duckdb`` extra is
  installed.

Backends register themselves in a name → factory registry so callers
can select one by string (``REPRO_EXEC_BACKEND``) without importing
driver packages they may not have; :func:`create_backend` raises
:class:`~repro.exceptions.BackendUnavailable` with an actionable
message when the driver is missing.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable

from repro.exceptions import BackendUnavailable
from repro.sql.executor import ExecutionResult
from repro.sql.plan import PlanNode
from repro.storage.database import Database

if TYPE_CHECKING:  # pragma: no cover - the udf package imports the cost
    # model, whose package init reaches back here via repro.stats; a
    # runtime import would close that cycle
    from repro.udf.udf import UDF

#: Environment variable selecting the default backend for experiment
#: drivers (``scale_from_env`` analogue for execution).
BACKEND_ENV_VAR = "REPRO_EXEC_BACKEND"


class ExecutionBackend(ABC):
    """Executes query plans against one database.

    The result-compat contract: :meth:`execute` returns an
    :class:`~repro.sql.executor.ExecutionResult` whose relation keys
    columns by qualified name, whose ``runtime`` is in seconds
    (simulated or wall-clock), and whose ``true_cards`` contains at
    least the root node's output cardinality. Backends that cannot
    observe per-operator cardinalities report what they can; callers
    needing full annotations use the simulator.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    def __init__(self, database: Database):
        self.database = database

    @abstractmethod
    def execute(self, root: PlanNode, noise_seed: int | None = None) -> ExecutionResult:
        """Run the plan and return result rows, work counters, and a
        runtime. ``noise_seed`` seeds measurement jitter on simulated
        backends; real backends ignore it (their jitter is physical)."""

    def evaluate_udf(self, udf: "UDF", rows: list[tuple]) -> list:
        """Evaluate a scalar UDF on materialized rows (``None`` = NULL).

        Used by the workload generator to calibrate UDF-filter literals
        against output quantiles. The in-process interpreter is exact
        for every backend — generated UDFs are pure Python either way —
        so the default suffices; backends may override to route through
        the engine itself.
        """
        values, _ = udf.evaluate_batch(rows)
        return values

    def close(self) -> None:
        """Release engine resources (connections, temp files)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(database={self.database.name!r})"


# ----------------------------------------------------------------------
# registry
#: name -> (factory, probe). The probe returns None when the backend can
#: be constructed on this host, else a human-readable reason.
_REGISTRY: dict[
    str,
    tuple[Callable[[Database], ExecutionBackend], Callable[[], str | None]],
] = {}


def register_backend(
    name: str,
    factory: Callable[[Database], ExecutionBackend],
    probe: Callable[[], str | None] = lambda: None,
) -> None:
    """Register a backend factory under ``name`` (last wins)."""
    _REGISTRY[name] = (factory, probe)


def registered_backends() -> list[str]:
    """All registered backend names, available or not."""
    return sorted(_REGISTRY)


def backend_available(name: str) -> bool:
    """Whether ``create_backend(name, ...)`` would succeed here."""
    entry = _REGISTRY.get(name)
    return entry is not None and entry[1]() is None


def available_backends() -> list[str]:
    """Backend names that can actually be constructed on this host."""
    return [name for name in registered_backends() if backend_available(name)]


def create_backend(name: str, database: Database) -> ExecutionBackend:
    """Construct a backend by registry name.

    Raises :class:`BackendUnavailable` for unknown names and for
    registered backends whose driver package is missing.
    """
    entry = _REGISTRY.get(name)
    if entry is None:
        raise BackendUnavailable(
            f"unknown execution backend {name!r}; "
            f"registered: {registered_backends()}"
        )
    factory, probe = entry
    reason = probe()
    if reason is not None:
        raise BackendUnavailable(f"backend {name!r} is unavailable: {reason}")
    return factory(database)


def resolve_backend(
    backend: "str | ExecutionBackend | None", database: Database
) -> ExecutionBackend:
    """Normalize the ``backend=`` argument refactored call sites accept.

    ``None`` means the simulator (the historical hard-wired behaviour);
    a string goes through the registry; an instance passes through —
    after a guard that it is bound to the same database, because a
    backend holds loaded tables and silently executing against a
    different database's data would be a correctness bug.
    """
    if backend is None:
        backend = "simulator"
    if isinstance(backend, str):
        return create_backend(backend, database)
    if backend.database is not database:
        raise BackendUnavailable(
            f"backend {backend.name!r} is bound to database "
            f"{backend.database.name!r}, not {database.name!r}; "
            "create one per database"
        )
    return backend


def default_backend_name() -> str:
    """The backend experiment drivers use, from ``REPRO_EXEC_BACKEND``."""
    return os.environ.get(BACKEND_ENV_VAR, "simulator")
