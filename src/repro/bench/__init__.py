"""Benchmark substrate: workload generation, execution, caching."""

from repro.bench.builder import (
    BenchmarkEntry,
    DatasetBenchmark,
    PlacementRun,
    benchmark_statistics,
    build_benchmark,
    build_benchmark_for_database,
    build_dataset_benchmark,
    load_or_build_dataset,
    prepare_full_database,
)
from repro.bench.workload import WorkloadConfig, WorkloadGenerator

__all__ = [
    "BenchmarkEntry",
    "DatasetBenchmark",
    "PlacementRun",
    "WorkloadConfig",
    "WorkloadGenerator",
    "benchmark_statistics",
    "build_benchmark",
    "build_benchmark_for_database",
    "build_dataset_benchmark",
    "load_or_build_dataset",
    "prepare_full_database",
]
