"""SQL workload generator (§V of the paper).

Extends the methodology of Kipf et al. [23] / Hilprecht et al. [11]:
random connected subsets of the FK join graph (1-5 joins), literal-based
filters whose constants are drawn from actual column values, and — the new
part — a scalar UDF per query, either as a filter predicate (~77% of the
benchmark) or inside the projection/aggregation (~23%).

UDF-filter literals are chosen by evaluating the UDF on a sample of its
input rows and picking the output quantile matching a target selectivity
drawn from Table II's range (1e-4 .. 1.0), so the benchmark covers the
full selectivity spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SchemaError
from repro.sql.expressions import ColumnRef, CompareOp
from repro.sql.plan import AggFunc
from repro.sql.query import AggSpec, FilterSpec, JoinSpec, Query, UDFRole, UDFSpec
from repro.storage.database import Database
from repro.storage.datatypes import DataType
from repro.udf.generator import UDFGenerator, UDFGeneratorConfig

_NUMERIC_FILTER_OPS = (
    CompareOp.LT, CompareOp.LEQ, CompareOp.GT, CompareOp.GEQ, CompareOp.EQ,
)


@dataclass
class WorkloadConfig:
    """Workload-shape knobs (defaults match Table II)."""

    max_joins: int = 5
    join_weights: tuple[float, ...] = (0.1, 0.25, 0.25, 0.2, 0.12, 0.08)  # P(0..5)
    max_filters_per_table: int = 3
    filter_prob: float = 0.6
    #: fraction of queries whose UDF sits in a filter (72k / 93.8k in Table II)
    udf_filter_fraction: float = 0.77
    #: fraction of queries without any UDF (the paper trains with <10%)
    non_udf_fraction: float = 0.08
    udf_filter_selectivity_range: tuple[float, float] = (1e-4, 1.0)
    udf_sample_rows: int = 200
    #: probability a string filter is a LIKE prefix match instead of
    #: EQ/NEQ; 0.0 keeps the historical workload (and its benchmark
    #: fingerprints) byte-identical
    like_prob: float = 0.0
    udf: UDFGeneratorConfig = field(default_factory=UDFGeneratorConfig)


class WorkloadGenerator:
    """Generates :class:`Query` objects for one database."""

    def __init__(
        self,
        database: Database,
        seed: int = 0,
        config: WorkloadConfig | None = None,
        backend=None,
    ):
        """``backend`` (an :class:`~repro.exec.ExecutionBackend`) routes
        the UDF-output sampling that calibrates filter literals; ``None``
        evaluates in-process, identical to the historical behaviour."""
        self.database = database
        self.rng = np.random.default_rng(seed)
        self.config = config or WorkloadConfig()
        self.backend = backend
        self._query_counter = 0

    # ------------------------------------------------------------------
    def generate(self, n_queries: int) -> list[Query]:
        return [self.generate_one() for _ in range(n_queries)]

    def generate_one(self) -> Query:
        """One random SPJA query (with or without a UDF)."""
        rng = self.rng
        cfg = self.config
        tables, joins = self._sample_join_tree()
        filters = self._sample_filters(tables)
        udf_spec = None
        if rng.random() >= cfg.non_udf_fraction:
            udf_spec = self._sample_udf(tables)
        agg = AggSpec(func=AggFunc.COUNT)
        query = Query(
            dataset=self.database.name,
            tables=tuple(tables),
            joins=tuple(joins),
            filters=tuple(filters),
            udf=udf_spec,
            agg=agg,
            query_id=self._query_counter,
        )
        self._query_counter += 1
        query.validate()
        return query

    # ------------------------------------------------------------------
    def _sample_join_tree(self) -> tuple[list[str], list[JoinSpec]]:
        """Random connected subtree of the FK graph."""
        rng = self.rng
        cfg = self.config
        weights = np.asarray(cfg.join_weights[: cfg.max_joins + 1], dtype=np.float64)
        weights /= weights.sum()
        target_joins = int(rng.choice(len(weights), p=weights))

        all_tables = self.database.table_names
        start = str(all_tables[int(rng.integers(0, len(all_tables)))])
        tables = [start]
        joins: list[JoinSpec] = []
        for _ in range(target_joins):
            frontier = [
                fk
                for table in tables
                for fk in self.database.joins_for(table)
                if fk.other(table) not in tables
            ]
            if not frontier:
                break
            fk = frontier[int(rng.integers(0, len(frontier)))]
            new_table = fk.child_table if fk.child_table not in tables else fk.parent_table
            tables.append(new_table)
            joins.append(
                JoinSpec(
                    ColumnRef(fk.child_table, fk.child_column),
                    ColumnRef(fk.parent_table, fk.parent_column),
                )
            )
        return tables, joins

    def _sample_filters(self, tables: list[str]) -> list[FilterSpec]:
        rng = self.rng
        cfg = self.config
        filters: list[FilterSpec] = []
        for table_name in tables:
            if rng.random() > cfg.filter_prob:
                continue
            table = self.database.table(table_name)
            candidates = [
                c for c in table.columns
                if c.name != "id"
                and not c.name.endswith("_id")
                and not c.name.endswith("_sk")  # star-schema surrogate keys
            ]
            if not candidates:
                continue
            n_filters = int(rng.integers(1, cfg.max_filters_per_table + 1))
            for _ in range(n_filters):
                column = candidates[int(rng.integers(0, len(candidates)))]
                spec = self._sample_predicate(table_name, column)
                if spec is not None:
                    filters.append(spec)
        return filters

    def _sample_predicate(self, table_name: str, column) -> FilterSpec | None:
        rng = self.rng
        cfg = self.config
        values = column.non_null_values()
        if len(values) == 0:
            return None
        ref = ColumnRef(table_name, column.name)
        if column.dtype is DataType.STRING:
            literal = str(values[int(rng.integers(0, len(values)))])
            # like_prob draws only when enabled, so the default rng
            # sequence (and cached benchmark fingerprints) is untouched.
            if cfg.like_prob > 0 and rng.random() < cfg.like_prob:
                cut = int(rng.integers(1, max(2, len(literal))))
                return FilterSpec(ref, CompareOp.LIKE, literal[:cut])
            op = CompareOp.EQ if rng.random() < 0.8 else CompareOp.NEQ
            return FilterSpec(ref, op, literal)
        op = _NUMERIC_FILTER_OPS[int(rng.integers(0, len(_NUMERIC_FILTER_OPS)))]
        quantile = float(rng.uniform(0.02, 0.98))
        literal = float(np.quantile(values.astype(np.float64), quantile))
        if column.dtype is DataType.INT:
            literal = int(round(literal))
        return FilterSpec(ref, op, literal)

    # ------------------------------------------------------------------
    def _sample_udf(self, tables: list[str]) -> UDFSpec:
        rng = self.rng
        cfg = self.config
        input_table_name = tables[int(rng.integers(0, len(tables)))]
        table = self.database.table(input_table_name)
        udf, arg_columns = UDFGenerator(table, rng, cfg.udf).generate()
        role = (
            UDFRole.FILTER
            if rng.random() < cfg.udf_filter_fraction
            else UDFRole.PROJECTION
        )
        spec = UDFSpec(
            udf=udf,
            input_table=input_table_name,
            input_columns=arg_columns,
            role=role,
        )
        if role is UDFRole.FILTER:
            spec.op, spec.literal = self._udf_filter_predicate(table, spec)
        return spec

    def _udf_filter_predicate(self, table, spec: UDFSpec) -> tuple[CompareOp, float]:
        """Pick OP/literal hitting a random target selectivity (Table II)."""
        rng = self.rng
        cfg = self.config
        n = min(len(table), cfg.udf_sample_rows)
        if n == 0:
            raise SchemaError(f"table {table.name!r} is empty; cannot sample UDF output")
        sample_idx = rng.choice(len(table), size=n, replace=False)
        rows = [
            tuple(table.column(c).python_value(int(i)) for c in spec.input_columns)
            for i in sample_idx
        ]
        if self.backend is not None:
            outputs = self.backend.evaluate_udf(spec.udf, rows)
        else:
            outputs, _ = spec.udf.evaluate_batch(rows)
        numeric = np.asarray([v for v in outputs if v is not None], dtype=np.float64)
        lo, hi = cfg.udf_filter_selectivity_range
        target = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        if len(numeric) == 0:
            return CompareOp.LEQ, 0.0
        op = CompareOp.LEQ if rng.random() < 0.5 else CompareOp.GEQ
        quantile = target if op is CompareOp.LEQ else 1.0 - target
        literal = float(np.quantile(numeric, min(max(quantile, 0.0), 1.0)))
        return op, literal
