"""Benchmark builder: queries + ground-truth runtimes (§V).

For every generated query the builder executes the plan at each relevant
UDF placement (push-down / intermediate / pull-up for UDF filters; the
single natural plan otherwise) and records:

* the simulated runtime (calibrated cost model + seeded noise),
* its decomposition into UDF cost vs. plain-query cost (needed by the
  split baselines Flat+Graph and Graph+Graph),
* true cardinalities on every plan node,
* UDF complexity metadata (branch/loop/COMP-node counts for Exp 2).

Built benchmarks persist through :mod:`repro.eval.resultstore`, keyed
by a fingerprint over (dataset, queries, seed, generator + workload
configs), so experiments across processes (pytest benches, parallel
fold workers) don't rebuild them — and a config change can never serve
a stale benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.cfg.builder import build_udf_graph
from repro.cfg.nodes import UDFNodeType
from repro.exec import resolve_backend
from repro.sql.costmodel import COST_CONSTANTS
from repro.sql.optimizer import build_plan
from repro.sql.plan import PlanNode
from repro.sql.query import Query, UDFPlacement, UDFRole
from repro.storage.database import Database
from repro.storage.generator import (
    DATASET_NAMES,
    GeneratorConfig,
    generate_database,
    hash_name,
)
from repro.storage.table import Table
from repro.udf.dataprep import fill_nulls
from repro.bench.workload import WorkloadConfig, WorkloadGenerator


@dataclass
class PlacementRun:
    """One executed plan variant of a benchmark query."""

    placement: UDFPlacement
    plan: PlanNode
    runtime: float
    udf_runtime: float
    query_runtime: float


@dataclass
class BenchmarkEntry:
    """One benchmark query with all executed placements."""

    query: Query
    dataset: str
    runs: dict[UDFPlacement, PlacementRun]
    udf_meta: dict = field(default_factory=dict)

    @property
    def has_udf_filter(self) -> bool:
        return self.query.has_udf and self.query.udf.role is UDFRole.FILTER

    def default_run(self) -> PlacementRun:
        """The engine-default plan (push-down, the DBMS status quo)."""
        if UDFPlacement.PUSH_DOWN in self.runs:
            return self.runs[UDFPlacement.PUSH_DOWN]
        return next(iter(self.runs.values()))


@dataclass
class DatasetBenchmark:
    """All benchmark queries of one dataset, plus the prepared database."""

    name: str
    database: Database
    entries: list[BenchmarkEntry]

    @property
    def n_queries(self) -> int:
        return len(self.entries)


def prepare_full_database(database: Database) -> Database:
    """Fill NULLs in every column (the paper's data-adaptation step,
    applied globally so one statistics catalog serves all queries)."""
    tables = [
        Table(t.name, [fill_nulls(c) for c in t.columns])
        for t in database.tables.values()
    ]
    return Database(database.name, tables, database.foreign_keys)


def _runtime_components(result) -> tuple[float, float]:
    """Split a runtime into (udf_part, query_part) via the work counters."""
    udf_cost = sum(
        COST_CONSTANTS[key] * amount
        for key, amount in result.counters.counts.items()
        if key.startswith("udf_")
    )
    total_cost = result.counters.total_seconds()
    if total_cost <= 0:
        return 0.0, result.runtime
    noise_factor = result.runtime / total_cost
    udf_runtime = udf_cost * noise_factor
    return udf_runtime, result.runtime - udf_runtime


def _udf_metadata(query: Query) -> dict:
    if not query.has_udf:
        return {}
    udf = query.udf.udf
    graph = build_udf_graph(udf)
    n_comp = sum(1 for n in graph.nodes if n.ntype is UDFNodeType.COMP)
    return {
        "n_branches": len(udf.branches),
        "n_loops": len(udf.loops),
        "n_comp_nodes": n_comp,
        "graph_size": len(graph.nodes),
        "total_static_ops": float(sum(udf.op_counts.values())),
        "role": query.udf.role.value,
    }


def build_dataset_benchmark(
    name: str,
    n_queries: int,
    seed: int = 0,
    generator_config: GeneratorConfig | None = None,
    workload_config: WorkloadConfig | None = None,
    backend=None,
) -> DatasetBenchmark:
    """Generate, execute, and package the benchmark for one dataset.

    ``backend`` selects the execution backend (name, instance, or
    ``None`` for the simulator — the historical behaviour, identical
    down to the noise seeds).
    """
    database = prepare_full_database(generate_database(name, config=generator_config))
    return build_benchmark_for_database(
        name, database, n_queries, seed=seed,
        workload_config=workload_config, backend=backend,
    )


def build_benchmark_for_database(
    name: str,
    database: Database,
    n_queries: int,
    seed: int = 0,
    workload_config: WorkloadConfig | None = None,
    backend=None,
) -> DatasetBenchmark:
    """Benchmark an already-prepared database (the realbench path: the
    star-schema generator builds the database, this executes on it)."""
    exec_backend = resolve_backend(backend, database)
    workload = WorkloadGenerator(
        database, seed=seed, config=workload_config, backend=exec_backend
    )
    entries: list[BenchmarkEntry] = []
    for query in workload.generate(n_queries):
        runs: dict[UDFPlacement, PlacementRun] = {}
        if query.has_udf and query.udf.role is UDFRole.FILTER and query.num_joins > 0:
            placements = list(UDFPlacement)
        else:
            placements = [UDFPlacement.PUSH_DOWN]
        for placement in placements:
            plan = build_plan(query, placement)
            noise_seed = hash_name(f"{name}/{query.query_id}/{placement.value}")
            result = exec_backend.execute(plan, noise_seed=noise_seed)
            udf_runtime, query_runtime = _runtime_components(result)
            runs[placement] = PlacementRun(
                placement=placement,
                plan=plan,
                runtime=result.runtime,
                udf_runtime=udf_runtime,
                query_runtime=query_runtime,
            )
        entries.append(
            BenchmarkEntry(
                query=query,
                dataset=name,
                runs=runs,
                udf_meta=_udf_metadata(query),
            )
        )
    return DatasetBenchmark(name=name, database=database, entries=entries)


# ----------------------------------------------------------------------
def cache_dir() -> Path:
    """The result-store root (re-exported for callers of the old API)."""
    from repro.eval.resultstore import cache_dir as _store_cache_dir

    return _store_cache_dir()


def load_or_build_dataset(
    name: str,
    n_queries: int,
    seed: int = 0,
    use_cache: bool = True,
    generator_config: GeneratorConfig | None = None,
    workload_config: WorkloadConfig | None = None,
    backend: str | None = None,
) -> DatasetBenchmark:
    """Store-cached version of :func:`build_dataset_benchmark`.

    The fingerprint gains a backend part only for non-simulator
    backends, so every cached simulator benchmark built before the
    backend seam existed stays valid.

    (Imports the result store lazily: ``repro.eval`` pulls in the
    sample-prep stack, which itself imports this module.)
    """
    from repro.eval.resultstore import default_store

    store = default_store()
    parts = [
        "bench", name, n_queries, seed,
        generator_config or GeneratorConfig(),
        workload_config or WorkloadConfig(),
    ]
    if backend not in (None, "simulator"):
        parts.append(("backend", backend))
    fp = store.fingerprint(*parts)
    return store.get_or_compute(
        "bench", fp,
        lambda: build_dataset_benchmark(
            name, n_queries, seed,
            generator_config=generator_config, workload_config=workload_config,
            backend=backend,
        ),
        use_cache=use_cache,
        description=f"benchmark {name} ({n_queries} queries, seed {seed})",
    )


def build_benchmark(
    names: tuple[str, ...] = DATASET_NAMES,
    n_queries_per_db: int = 100,
    seed: int = 0,
    use_cache: bool = True,
) -> dict[str, DatasetBenchmark]:
    """The full multi-dataset benchmark keyed by dataset name."""
    return {
        name: load_or_build_dataset(name, n_queries_per_db, seed, use_cache)
        for name in names
    }


def benchmark_statistics(benchmarks: dict[str, DatasetBenchmark]) -> dict:
    """Aggregate statistics in the shape of Table II."""
    n_queries = sum(b.n_queries for b in benchmarks.values())
    n_udf_filter = sum(
        1 for b in benchmarks.values() for e in b.entries
        if e.query.has_udf and e.query.udf.role is UDFRole.FILTER
    )
    n_udf_proj = sum(
        1 for b in benchmarks.values() for e in b.entries
        if e.query.has_udf and e.query.udf.role is UDFRole.PROJECTION
    )
    joins = [e.query.num_joins for b in benchmarks.values() for e in b.entries]
    filters = [len(e.query.filters) for b in benchmarks.values() for e in b.entries]
    branches = [
        e.udf_meta.get("n_branches", 0)
        for b in benchmarks.values() for e in b.entries if e.query.has_udf
    ]
    loops = [
        e.udf_meta.get("n_loops", 0)
        for b in benchmarks.values() for e in b.entries if e.query.has_udf
    ]
    ops = [
        e.udf_meta.get("total_static_ops", 0.0)
        for b in benchmarks.values() for e in b.entries if e.query.has_udf
    ]
    total_runtime = sum(
        run.runtime for b in benchmarks.values() for e in b.entries
        for run in e.runs.values()
    )
    return {
        "n_queries": n_queries,
        "n_udf_filter_queries": n_udf_filter,
        "n_udf_projection_queries": n_udf_proj,
        "n_databases": len(benchmarks),
        "total_runtime_hours": total_runtime / 3600.0,
        "join_range": (min(joins), max(joins)) if joins else (0, 0),
        "filter_range": (min(filters), max(filters)) if filters else (0, 0),
        "branch_range": (min(branches), max(branches)) if branches else (0, 0),
        "loop_range": (min(loops), max(loops)) if loops else (0, 0),
        "ops_range": (min(ops), max(ops)) if ops else (0, 0),
    }
