"""A small reverse-mode autograd engine on numpy arrays.

This replaces PyTorch for the reproduction (DESIGN.md §1). It supports
exactly the operations the GNN and MLP models need — dense linear algebra,
elementwise nonlinearities, reductions, concatenation, and the row
gather/scatter-add pair that implements message passing over graphs.

Gradients are accumulated into ``.grad`` by :meth:`Tensor.backward`, which
runs a topological sweep over the recorded tape.

Dtype policy (DESIGN.md §8): the engine is dtype-polymorphic. A tensor
built from a floating-point array keeps that array's dtype; anything else
is cast to the engine default (:func:`set_default_dtype`, float64 out of
the box so numerical gradient checks stay exact). Scalar operands adopt
the tensor's dtype, so a float32 model never silently promotes to
float64 mid-graph. Training runs float32 by default (``GNNConfig.dtype``)
with float64 available as the parity mode.

Backward-pass allocation policy: leaf gradients accumulate in place into
preallocated ``.grad`` buffers (see :meth:`Optimizer.zero_grad`), and the
scratch arrays used for scatter gradients are recycled across sweeps
through a shape-keyed buffer pool — iteration N+1 reuses iteration N's
buffers instead of hitting the allocator.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

_DEFAULT_DTYPE = np.dtype(np.float64)
_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def set_default_dtype(dtype: np.dtype | str) -> None:
    """Set the dtype used when tensor inputs are not already float arrays."""
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in _FLOAT_DTYPES:
        raise ValueError(f"unsupported tensor dtype {dtype}")
    _DEFAULT_DTYPE = dtype


def get_default_dtype() -> np.dtype:
    return _DEFAULT_DTYPE


class _GradBufferPool:
    """Recycles backward-pass scratch arrays across sweeps.

    Buffers are lent out for the duration of one ``backward()`` sweep
    (nothing produced inside a sweep outlives it: leaf grads are copied
    into their own ``.grad`` buffers) and returned wholesale at the end,
    so the next sweep — typically identical shapes — allocates nothing.
    """

    #: retention caps: shapes churn when batches vary (e.g. parity-mode
    #: resharding draws new partitions every epoch), so the free list is
    #: bounded per shape and overall instead of growing for process life
    MAX_PER_KEY = 4
    MAX_KEYS = 128

    def __init__(self) -> None:
        self._free: dict[tuple, list[np.ndarray]] = {}
        self._lent: list[tuple[tuple, np.ndarray]] = []
        self.active = False

    def zeros(self, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        if not self.active:
            return np.zeros(shape, dtype=dtype)
        key = (shape, dtype)
        stack = self._free.get(key)
        if stack:
            buf = stack.pop()
            buf.fill(0.0)
        else:
            buf = np.zeros(shape, dtype=dtype)
        self._lent.append((key, buf))
        return buf

    def release_all(self) -> None:
        for key, buf in self._lent:
            stack = self._free.get(key)
            if stack is None:
                if len(self._free) >= self.MAX_KEYS:
                    # drop the least-recently-added shape class
                    self._free.pop(next(iter(self._free)))
                stack = self._free[key] = []
            if len(stack) < self.MAX_PER_KEY:
                stack.append(buf)
        self._lent.clear()

    def clear(self) -> None:
        self._free.clear()
        self._lent.clear()


_GRAD_POOL = _GradBufferPool()


class Tensor:
    """An array with an optional gradient tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "_grad_buf")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        dtype: np.dtype | str | None = None,
    ):
        if dtype is not None:
            arr = np.asarray(data, dtype=dtype)
        else:
            arr = np.asarray(data)
            if arr.dtype not in _FLOAT_DTYPES:
                arr = arr.astype(_DEFAULT_DTYPE)
        self.data = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad
        self._parents = _parents
        self._backward = _backward
        #: persistent accumulation buffer, reused across backward sweeps
        self._grad_buf: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    # ------------------------------------------------------------------
    def _accumulate_grad(self, g: np.ndarray) -> None:
        """Accumulate ``g`` in place into the persistent ``.grad`` buffer.

        ``.grad is None`` still means "no gradient flowed since the last
        zero_grad" (optimizers rely on that to skip untouched params);
        the backing buffer itself is allocated once and reused.
        """
        if self.grad is None:
            buf = self._grad_buf
            if (
                buf is None
                or buf.shape != self.data.shape
                or buf.dtype != self.data.dtype
            ):
                buf = np.empty_like(self.data)
                self._grad_buf = buf
            np.copyto(buf, g)
            self.grad = buf
        else:
            self.grad += g

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (must be scalar if grad is None)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        # Iterative post-order DFS (training graphs can be thousands of
        # ops deep — recursion would overflow the interpreter stack).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            tensor, expanded = stack.pop()
            if expanded:
                topo.append(tensor)
                continue
            if id(tensor) in visited:
                continue
            visited.add(id(tensor))
            stack.append((tensor, True))
            for parent in tensor._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        # grads maps id -> (array, owned). Arrays returned by backward
        # closures may alias each other (e.g. ``add`` hands the same
        # array to both parents), so an entry is only mutated in place
        # once this sweep owns it.
        grads: dict[int, tuple[np.ndarray, bool]] = {
            id(self): (np.asarray(grad, dtype=self.data.dtype), False)
        }
        reentrant = _GRAD_POOL.active
        _GRAD_POOL.active = True
        try:
            for t in reversed(topo):
                entry = grads.pop(id(t), None)
                if entry is None:
                    continue
                g = entry[0]
                if t.requires_grad:
                    t._accumulate_grad(g)
                if t._backward is not None:
                    for parent, pg in t._backward(g):
                        if parent.requires_grad or parent._backward is not None:
                            pid = id(parent)
                            existing = grads.get(pid)
                            if existing is None:
                                grads[pid] = (pg, False)
                            else:
                                arr, owned = existing
                                if owned:
                                    arr += pg
                                else:
                                    grads[pid] = (arr + pg, True)
        finally:
            if not reentrant:
                _GRAD_POOL.active = False
                _GRAD_POOL.release_all()

    # ------------------------------------------------------------------
    # operator sugar
    def __add__(self, other) -> "Tensor":
        return add(self, _wrap(other, self))

    def __radd__(self, other) -> "Tensor":
        return add(_wrap(other, self), self)

    def __sub__(self, other) -> "Tensor":
        return add(self, mul(_wrap(other, self), _wrap(-1.0, self)))

    def __rsub__(self, other) -> "Tensor":
        return add(_wrap(other, self), mul(self, _wrap(-1.0, self)))

    def __mul__(self, other) -> "Tensor":
        return mul(self, _wrap(other, self))

    def __rmul__(self, other) -> "Tensor":
        return mul(_wrap(other, self), self)

    def __truediv__(self, other) -> "Tensor":
        return mul(self, pow_scalar(_wrap(other, self), -1.0))

    def __matmul__(self, other) -> "Tensor":
        return matmul(self, other)

    def __neg__(self) -> "Tensor":
        return mul(self, _wrap(-1.0, self))


def _wrap(value, like: Tensor | None = None) -> Tensor:
    """Lift ``value`` to a Tensor; scalars adopt ``like``'s dtype so mixed
    scalar arithmetic never promotes a float32 graph to float64."""
    if isinstance(value, Tensor):
        return value
    if like is not None and np.isscalar(value):
        return Tensor(np.asarray(value, dtype=like.data.dtype))
    return Tensor(value)


def _needs_tape(*tensors: Tensor) -> bool:
    return any(t.requires_grad or t._backward is not None for t in tensors)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse numpy broadcasting)."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


# ----------------------------------------------------------------------
# primitive operations
def add(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data + b.data
    if not _needs_tape(a, b):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, _unbroadcast(g, a.shape)), (b, _unbroadcast(g, b.shape)))

    return Tensor(out_data, _parents=(a, b), _backward=backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data * b.data
    if not _needs_tape(a, b):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return (
            (a, _unbroadcast(g * b.data, a.shape)),
            (b, _unbroadcast(g * a.data, b.shape)),
        )

    return Tensor(out_data, _parents=(a, b), _backward=backward)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data @ b.data
    if not _needs_tape(a, b):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g @ b.data.T), (b, a.data.T @ g))

    return Tensor(out_data, _parents=(a, b), _backward=backward)


def pow_scalar(a: Tensor, exponent: float) -> Tensor:
    out_data = a.data**exponent

    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g * exponent * a.data ** (exponent - 1.0)),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def relu(a: Tensor) -> Tensor:
    out_data = np.maximum(a.data, 0.0)
    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g * (a.data > 0.0)),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def leaky_relu(a: Tensor, slope: float = 0.01) -> Tensor:
    out_data = np.where(a.data > 0.0, a.data, a.data.dtype.type(slope) * a.data)
    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        one = a.data.dtype.type(1.0)
        return ((a, g * np.where(a.data > 0.0, one, a.data.dtype.type(slope))),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def tanh(a: Tensor) -> Tensor:
    out_data = np.tanh(a.data)
    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g * (1.0 - out_data**2)),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def sigmoid(a: Tensor) -> Tensor:
    out_data = 1.0 / (1.0 + np.exp(-a.data))
    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g * out_data * (1.0 - out_data)),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def exp(a: Tensor) -> Tensor:
    out_data = np.exp(a.data)
    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g * out_data),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def log(a: Tensor) -> Tensor:
    out_data = np.log(a.data)
    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g / a.data),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def tensor_sum(a: Tensor, axis: int | None = None, keepdims: bool = False) -> Tensor:
    out_data = a.data.sum(axis=axis, keepdims=keepdims)
    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        g_arr = np.asarray(g)
        if axis is not None and not keepdims:
            g_arr = np.expand_dims(g_arr, axis)
        return ((a, np.broadcast_to(g_arr, a.shape).copy()),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def mean(a: Tensor, axis: int | None = None, keepdims: bool = False) -> Tensor:
    count = a.data.size if axis is None else a.data.shape[axis]
    return tensor_sum(a, axis=axis, keepdims=keepdims) * (1.0 / count)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    ts = list(tensors)
    out_data = np.concatenate([t.data for t in ts], axis=axis)
    if not _needs_tape(*ts):
        return Tensor(out_data)
    sizes = [t.data.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        grads = []
        for t, start, stop in zip(ts, offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[axis] = slice(start, stop)
            grads.append((t, g[tuple(index)]))
        return tuple(grads)

    return Tensor(out_data, _parents=tuple(ts), _backward=backward)


def gather_rows(a: Tensor, indices: np.ndarray) -> Tensor:
    """Rows ``a[indices]``; the backward pass scatter-adds into ``a``."""
    idx = np.asarray(indices, dtype=np.int64)
    out_data = a.data[idx]
    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        grad = _GRAD_POOL.zeros(a.data.shape, a.data.dtype)
        np.add.at(grad, idx, g)
        return ((a, grad),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def scatter_add(
    src: Tensor, indices: np.ndarray, n_rows: int, *, unique: bool = False
) -> Tensor:
    """``out[indices[i]] += src[i]``; shape (n_rows, src.shape[1]).

    Pass ``unique=True`` when every index occurs at most once (e.g. the
    per-type position scatters of the GNN encoders): plain fancy
    assignment then replaces the much slower ``np.add.at``.
    """
    idx = np.asarray(indices, dtype=np.int64)
    out_data = np.zeros((n_rows,) + src.data.shape[1:], dtype=src.data.dtype)
    if unique:
        out_data[idx] = src.data
    else:
        np.add.at(out_data, idx, src.data)
    if not _needs_tape(src):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((src, g[idx]),)

    return Tensor(out_data, _parents=(src,), _backward=backward)


def dropout(a: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0.0:
        return a
    mask = ((rng.random(a.shape) >= p) / (1.0 - p)).astype(a.data.dtype, copy=False)
    return mul(a, Tensor(mask))


def where_rows(mask: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Row-wise select: rows where mask is True come from a, else from b."""
    m = np.asarray(mask, dtype=bool).reshape(-1, 1)
    out_data = np.where(m, a.data, b.data)
    if not _needs_tape(a, b):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g * m), (b, g * (~m)))

    return Tensor(out_data, _parents=(a, b), _backward=backward)
