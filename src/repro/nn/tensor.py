"""A small reverse-mode autograd engine on numpy arrays.

This replaces PyTorch for the reproduction (DESIGN.md §1). It supports
exactly the operations the GNN and MLP models need — dense linear algebra,
elementwise nonlinearities, reductions, concatenation, and the row
gather/scatter-add pair that implements message passing over graphs.

Gradients are accumulated into ``.grad`` by :meth:`Tensor.backward`, which
runs a topological sweep over the recorded tape.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np


class Tensor:
    """An array with an optional gradient tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad
        self._parents = _parents
        self._backward = _backward

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (must be scalar if grad is None)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        # Iterative post-order DFS (training graphs can be thousands of
        # ops deep — recursion would overflow the interpreter stack).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            tensor, expanded = stack.pop()
            if expanded:
                topo.append(tensor)
                continue
            if id(tensor) in visited:
                continue
            visited.add(id(tensor))
            stack.append((tensor, True))
            for parent in tensor._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        grads: dict[int, np.ndarray] = {id(self): np.asarray(grad, dtype=np.float64)}
        for t in reversed(topo):
            g = grads.pop(id(t), None)
            if g is None:
                continue
            if t.requires_grad:
                t.grad = g if t.grad is None else t.grad + g
            if t._backward is not None:
                for parent, pg in t._backward(g):
                    if parent.requires_grad or parent._backward is not None:
                        if id(parent) in grads:
                            grads[id(parent)] += pg
                        else:
                            grads[id(parent)] = pg

    # ------------------------------------------------------------------
    # operator sugar
    def __add__(self, other) -> "Tensor":
        return add(self, _wrap(other))

    def __radd__(self, other) -> "Tensor":
        return add(_wrap(other), self)

    def __sub__(self, other) -> "Tensor":
        return add(self, mul(_wrap(other), _wrap(-1.0)))

    def __rsub__(self, other) -> "Tensor":
        return add(_wrap(other), mul(self, _wrap(-1.0)))

    def __mul__(self, other) -> "Tensor":
        return mul(self, _wrap(other))

    def __rmul__(self, other) -> "Tensor":
        return mul(_wrap(other), self)

    def __truediv__(self, other) -> "Tensor":
        return mul(self, pow_scalar(_wrap(other), -1.0))

    def __matmul__(self, other) -> "Tensor":
        return matmul(self, other)

    def __neg__(self) -> "Tensor":
        return mul(self, _wrap(-1.0))


def _wrap(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _needs_tape(*tensors: Tensor) -> bool:
    return any(t.requires_grad or t._backward is not None for t in tensors)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse numpy broadcasting)."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


# ----------------------------------------------------------------------
# primitive operations
def add(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data + b.data
    if not _needs_tape(a, b):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, _unbroadcast(g, a.shape)), (b, _unbroadcast(g, b.shape)))

    return Tensor(out_data, _parents=(a, b), _backward=backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data * b.data
    if not _needs_tape(a, b):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return (
            (a, _unbroadcast(g * b.data, a.shape)),
            (b, _unbroadcast(g * a.data, b.shape)),
        )

    return Tensor(out_data, _parents=(a, b), _backward=backward)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data @ b.data
    if not _needs_tape(a, b):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g @ b.data.T), (b, a.data.T @ g))

    return Tensor(out_data, _parents=(a, b), _backward=backward)


def pow_scalar(a: Tensor, exponent: float) -> Tensor:
    out_data = a.data**exponent

    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g * exponent * a.data ** (exponent - 1.0)),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def relu(a: Tensor) -> Tensor:
    out_data = np.maximum(a.data, 0.0)
    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g * (a.data > 0.0)),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def leaky_relu(a: Tensor, slope: float = 0.01) -> Tensor:
    out_data = np.where(a.data > 0.0, a.data, slope * a.data)
    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g * np.where(a.data > 0.0, 1.0, slope)),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def tanh(a: Tensor) -> Tensor:
    out_data = np.tanh(a.data)
    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g * (1.0 - out_data**2)),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def sigmoid(a: Tensor) -> Tensor:
    out_data = 1.0 / (1.0 + np.exp(-a.data))
    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g * out_data * (1.0 - out_data)),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def exp(a: Tensor) -> Tensor:
    out_data = np.exp(a.data)
    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g * out_data),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def log(a: Tensor) -> Tensor:
    out_data = np.log(a.data)
    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g / a.data),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def tensor_sum(a: Tensor, axis: int | None = None, keepdims: bool = False) -> Tensor:
    out_data = a.data.sum(axis=axis, keepdims=keepdims)
    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        g_arr = np.asarray(g)
        if axis is not None and not keepdims:
            g_arr = np.expand_dims(g_arr, axis)
        return ((a, np.broadcast_to(g_arr, a.shape).copy()),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def mean(a: Tensor, axis: int | None = None, keepdims: bool = False) -> Tensor:
    count = a.data.size if axis is None else a.data.shape[axis]
    return tensor_sum(a, axis=axis, keepdims=keepdims) * (1.0 / count)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    ts = list(tensors)
    out_data = np.concatenate([t.data for t in ts], axis=axis)
    if not _needs_tape(*ts):
        return Tensor(out_data)
    sizes = [t.data.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        grads = []
        for t, start, stop in zip(ts, offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[axis] = slice(start, stop)
            grads.append((t, g[tuple(index)]))
        return tuple(grads)

    return Tensor(out_data, _parents=tuple(ts), _backward=backward)


def gather_rows(a: Tensor, indices: np.ndarray) -> Tensor:
    """Rows ``a[indices]``; the backward pass scatter-adds into ``a``."""
    idx = np.asarray(indices, dtype=np.int64)
    out_data = a.data[idx]
    if not _needs_tape(a):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        grad = np.zeros_like(a.data)
        np.add.at(grad, idx, g)
        return ((a, grad),)

    return Tensor(out_data, _parents=(a,), _backward=backward)


def scatter_add(src: Tensor, indices: np.ndarray, n_rows: int) -> Tensor:
    """``out[indices[i]] += src[i]``; shape (n_rows, src.shape[1])."""
    idx = np.asarray(indices, dtype=np.int64)
    out_data = np.zeros((n_rows,) + src.data.shape[1:], dtype=np.float64)
    np.add.at(out_data, idx, src.data)
    if not _needs_tape(src):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((src, g[idx]),)

    return Tensor(out_data, _parents=(src,), _backward=backward)


def dropout(a: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0.0:
        return a
    mask = (rng.random(a.shape) >= p) / (1.0 - p)
    return mul(a, Tensor(mask))


def where_rows(mask: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Row-wise select: rows where mask is True come from a, else from b."""
    m = np.asarray(mask, dtype=bool).reshape(-1, 1)
    out_data = np.where(m, a.data, b.data)
    if not _needs_tape(a, b):
        return Tensor(out_data)

    def backward(g: np.ndarray):
        return ((a, g * m), (b, g * (~m)))

    return Tensor(out_data, _parents=(a, b), _backward=backward)
