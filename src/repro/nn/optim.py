"""Optimizers: Adam and SGD, with gradient clipping.

All update rules run in place: moment buffers and the per-parameter
scratch arrays are allocated once at construction, so a training step
performs no per-step allocations beyond what numpy needs internally.
``p.grad is None`` marks parameters no gradient flowed into this step —
those are skipped, matching the reference behavior for e.g. node-type
encoders that never appeared in a shard.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    def __init__(self, params: list[Tensor], lr: float):
        self.params = [p for p in params if p.requires_grad]
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    def __init__(self, params: list[Tensor], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v


class Adam(Optimizer):
    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        # scratch pair reused for m_hat / v_hat (and decayed gradients)
        self._s1 = [np.empty_like(p.data) for p in self.params]
        self._s2 = [np.empty_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v, s1, s2 in zip(self.params, self._m, self._v, self._s1, self._s2):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=s1)
                s1 += grad
                grad = s1
            np.multiply(grad, 1.0 - self.beta1, out=s2)
            m *= self.beta1
            m += s2
            np.multiply(grad, 1.0 - self.beta2, out=s2)
            s2 *= grad
            v *= self.beta2
            v += s2
            # p -= (lr * m_hat) / (sqrt(v_hat) + eps), evaluated with the
            # same association as the out-of-place reference formula
            np.divide(v, bias2, out=s2)
            np.sqrt(s2, out=s2)
            s2 += self.eps
            np.divide(m, bias1, out=s1)
            s1 *= self.lr
            s1 /= s2
            p.data -= s1


def clip_grad_norm(params: list[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm
