"""Optimizers: Adam and SGD, with gradient clipping."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    def __init__(self, params: list[Tensor], lr: float):
        self.params = [p for p in params if p.requires_grad]
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    def __init__(self, params: list[Tensor], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v


class Adam(Optimizer):
    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(params: list[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm
