"""Neural-network modules: Linear, MLP, LayerNorm."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.tensor import (
    Tensor,
    add,
    concat,
    dropout,
    leaky_relu,
    matmul,
    mean,
    pow_scalar,
    relu,
)


class Module:
    """Base class: parameter registry + train/eval mode."""

    def __init__(self) -> None:
        self._params: dict[str, Tensor] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    def register(self, name: str, tensor: Tensor) -> Tensor:
        tensor.requires_grad = True
        self._params[name] = tensor
        return tensor

    def add_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        return module

    def parameters(self) -> list[Tensor]:
        params = list(self._params.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Tensor]]:
        named = [(prefix + name, p) for name, p in self._params.items()]
        for mod_name, module in self._modules.items():
            named.extend(module.named_parameters(prefix + mod_name + "."))
        return named

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    def n_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict missing parameters: {sorted(missing)}")
        for name, param in own.items():
            param.data = np.asarray(state[name], dtype=param.data.dtype).reshape(
                param.shape
            )


class Linear(Module):
    """Affine layer with Kaiming-uniform initialization.

    ``dtype`` selects the parameter precision (DESIGN.md §8): the same
    rng draws are made regardless of dtype, so a float32 model is the
    rounded image of its float64 parity twin.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None,
                 dtype: np.dtype | str = np.float64):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        bound = np.sqrt(6.0 / in_features)
        weight = rng.uniform(-bound, bound, size=(in_features, out_features))
        self.weight = self.register("weight", Tensor(weight, dtype=dtype))
        self.bias = self.register("bias", Tensor(np.zeros(out_features), dtype=dtype))

    def __call__(self, x: Tensor) -> Tensor:
        return add(matmul(x, self.weight), self.bias)


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5,
                 dtype: np.dtype | str = np.float64):
        super().__init__()
        self.gamma = self.register("gamma", Tensor(np.ones(dim), dtype=dtype))
        self.beta = self.register("beta", Tensor(np.zeros(dim), dtype=dtype))
        self.eps = eps

    def __call__(self, x: Tensor) -> Tensor:
        mu = mean(x, axis=-1, keepdims=True)
        centered = x - mu
        var = mean(centered * centered, axis=-1, keepdims=True)
        inv_std = pow_scalar(var + self.eps, -0.5)
        return self.gamma * (centered * inv_std) + self.beta


class MLP(Module):
    """Multi-layer perceptron with optional LayerNorm and dropout."""

    def __init__(
        self,
        in_features: int,
        hidden: Iterable[int],
        out_features: int,
        activation: str = "leaky_relu",
        layer_norm: bool = False,
        dropout_p: float = 0.0,
        rng: np.random.Generator | None = None,
        dtype: np.dtype | str = np.float64,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self._rng = rng
        self.dropout_p = dropout_p
        self.activation = activation
        dims = [in_features, *hidden, out_features]
        self.layers: list[Linear] = []
        self.norms: list[LayerNorm | None] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layer = Linear(d_in, d_out, rng, dtype=dtype)
            self.add_module(f"linear{i}", layer)
            self.layers.append(layer)
            if layer_norm and i < len(dims) - 2:
                norm = LayerNorm(d_out, dtype=dtype)
                self.add_module(f"norm{i}", norm)
                self.norms.append(norm)
            else:
                self.norms.append(None)

    def _activate(self, x: Tensor) -> Tensor:
        if self.activation == "relu":
            return relu(x)
        return leaky_relu(x)

    def __call__(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                if self.norms[i] is not None:
                    x = self.norms[i](x)
                x = self._activate(x)
                x = dropout(x, self.dropout_p, self._rng, self.training)
        return x


def concat_features(tensors: list[Tensor]) -> Tensor:
    """Concatenate feature tensors along the last axis."""
    return concat(tensors, axis=-1)
