"""Losses and gradient checking for cost-model training.

Runtimes span several orders of magnitude, so models predict
``log(runtime)`` and train with MSE in log space — minimizing
``(log ŷ - log y)²  =  log(Q)²`` where Q is the paper's Q-error metric.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.tensor import Tensor, mean


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    diff = pred - target
    return mean(diff * diff)


def log_mse_loss(pred_log: Tensor, true_runtime: np.ndarray) -> Tensor:
    """MSE between predicted log-runtimes and log of true runtimes.

    The target adopts the prediction's dtype so a float32 model trains
    entirely in float32 (DESIGN.md §8) instead of silently promoting the
    whole backward pass to float64.
    """
    target = np.log(np.maximum(np.asarray(true_runtime), 1e-9))
    return mse_loss(pred_log, Tensor(target.astype(pred_log.data.dtype, copy=False)))


def huber_loss(pred: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Smooth-L1; more robust to outlier runtimes than plain MSE."""
    diff = (pred - target).data
    quad = np.abs(diff) <= delta

    # Build as a weighted combination evaluated through the tape.
    residual = pred - target
    squared = residual * residual * 0.5
    # |x| via sign multiplication keeps the graph differentiable a.e.
    sign = Tensor(np.sign(diff))
    linear = residual * sign * delta - (0.5 * delta * delta)
    mask = Tensor(quad.astype(diff.dtype))
    inv_mask = Tensor(1.0 - quad.astype(diff.dtype))
    return mean(squared * mask + linear * inv_mask)


def numerical_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function (for gradcheck)."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        f_plus = f(x)
        flat[i] = original - eps
        f_minus = f(x)
        flat[i] = original
        grad_flat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def gradcheck(
    build_loss: Callable[[Tensor], Tensor],
    x: np.ndarray,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Compare autograd and numerical gradients for ``loss = f(x)``."""
    t = Tensor(x.copy(), requires_grad=True)
    loss = build_loss(t)
    loss.backward()
    analytic = t.grad

    def scalar_f(arr: np.ndarray) -> float:
        return build_loss(Tensor(arr)).item()

    numeric = numerical_gradient(scalar_f, x.copy())
    return np.allclose(analytic, numeric, atol=atol, rtol=rtol)
