"""Cost traces: per-operation work performed by UDF executions."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.costmodel import WorkCounters

#: Operation kinds traced inside UDFs. Keys match ``COST_CONSTANTS``
#: entries (with the ``udf_`` prefix added by :meth:`CostTrace.to_counters`).
OP_KINDS: tuple[str, ...] = (
    "arith",
    "string",
    "math_call",
    "numpy_call",
    "branch",
    "loop_iter",
    "return",
    "invocation",
)


@dataclass
class CostTrace:
    """Aggregated operation counts for a batch of UDF invocations."""

    counts: dict[str, float] = field(default_factory=dict)

    def add(self, kind: str, amount: float = 1.0) -> None:
        if kind not in OP_KINDS:
            raise KeyError(f"unknown UDF op kind {kind!r}")
        self.counts[kind] = self.counts.get(kind, 0.0) + amount

    def get(self, kind: str) -> float:
        return self.counts.get(kind, 0.0)

    def merge(self, other: "CostTrace") -> None:
        for kind, amount in other.counts.items():
            self.counts[kind] = self.counts.get(kind, 0.0) + amount

    def to_counters(self) -> WorkCounters:
        """Convert to executor work counters (``udf_*`` keys)."""
        counters = WorkCounters()
        for kind, amount in self.counts.items():
            counters.add(f"udf_{kind}", amount)
        return counters

    def total_ops(self) -> float:
        return sum(self.counts.values())
