"""Cost traces: per-operation work performed by UDF executions.

Two tracing modes live here:

* :class:`CostTrace` — the simulator's per-operation ledger, produced by
  the instrumented interpreter (:mod:`repro.udf.compilation`);
* :class:`InvocationCounter` — the minimal trace a *real* engine can
  produce. When a UDF runs inside DuckDB (:mod:`repro.exec`), per-block
  instrumentation is invisible to us, but the registered Python wrapper
  still observes every call; the counter turns that into the same
  ``udf_invocation`` work-counter key the simulator charges.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.sql.costmodel import WorkCounters

#: Operation kinds traced inside UDFs. Keys match ``COST_CONSTANTS``
#: entries (with the ``udf_`` prefix added by :meth:`CostTrace.to_counters`).
OP_KINDS: tuple[str, ...] = (
    "arith",
    "string",
    "math_call",
    "numpy_call",
    "branch",
    "loop_iter",
    "return",
    "invocation",
)


@dataclass
class CostTrace:
    """Aggregated operation counts for a batch of UDF invocations."""

    counts: dict[str, float] = field(default_factory=dict)

    def add(self, kind: str, amount: float = 1.0) -> None:
        if kind not in OP_KINDS:
            raise KeyError(f"unknown UDF op kind {kind!r}")
        self.counts[kind] = self.counts.get(kind, 0.0) + amount

    def get(self, kind: str) -> float:
        return self.counts.get(kind, 0.0)

    def merge(self, other: "CostTrace") -> None:
        for kind, amount in other.counts.items():
            self.counts[kind] = self.counts.get(kind, 0.0) + amount

    def to_counters(self) -> WorkCounters:
        """Convert to executor work counters (``udf_*`` keys)."""
        counters = WorkCounters()
        for kind, amount in self.counts.items():
            counters.add(f"udf_{kind}", amount)
        return counters

    def total_ops(self) -> float:
        return sum(self.counts.values())


class InvocationCounter:
    """Thread-safe tally of UDF invocations on a real-engine backend.

    Engines may evaluate registered Python UDFs from multiple threads;
    the wrapper increments under a lock and the backend reads
    :attr:`count` before/after a query to attribute invocations to it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0

    def add(self, n: int = 1) -> None:
        with self._lock:
            self._count += n

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def to_counters(self, since: int = 0) -> WorkCounters:
        """Invocations observed since a prior :attr:`count` snapshot, as
        executor work counters (the ``udf_invocation`` key)."""
        counters = WorkCounters()
        delta = self.count - since
        if delta > 0:
            counters.add("udf_invocation", float(delta))
        return counters
