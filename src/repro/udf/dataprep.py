"""Data preparation: adapt data to generated UDFs (§V of the paper).

The paper "flips the typical paradigm": instead of generating UDFs that
conform to the data, the data is adapted to the UDFs. Our generated UDF
templates are already total (guarded denominators/domains), so the only
remaining error source is NULL inputs. This module replaces NULLs in UDF
argument columns with type-appropriate defaults — mirroring the paper's
"replacing NULL values with default substitutes" step.
"""

from __future__ import annotations

import numpy as np

from repro.storage.column import Column
from repro.storage.database import Database
from repro.storage.datatypes import DataType
from repro.storage.table import Table


def default_substitute(column: Column) -> object:
    """The value used to replace NULLs: mean for numerics, mode for strings."""
    values = column.non_null_values()
    if column.dtype is DataType.STRING:
        if len(values) == 0:
            return ""
        uniques, counts = np.unique(values.astype(str), return_counts=True)
        return str(uniques[int(np.argmax(counts))])
    if len(values) == 0:
        return 0 if column.dtype is DataType.INT else 0.0
    mean = float(values.astype(np.float64).mean())
    return int(round(mean)) if column.dtype is DataType.INT else mean


def fill_nulls(column: Column) -> Column:
    """A copy of ``column`` with NULLs replaced by the default substitute."""
    if column.null_count == 0:
        return column
    substitute = default_substitute(column)
    values = column.values.copy()
    values[~column.valid] = substitute
    return Column(column.name, column.dtype, values, np.ones(len(column), dtype=bool))


def prepare_table(table: Table, udf_arg_columns: tuple[str, ...]) -> Table:
    """Adapt ``table`` so a UDF over ``udf_arg_columns`` never sees NULL."""
    new_columns = [
        fill_nulls(col) if col.name in udf_arg_columns else col
        for col in table.columns
    ]
    return Table(table.name, new_columns)


def prepare_database(
    database: Database, table: str, udf_arg_columns: tuple[str, ...]
) -> Database:
    """A database copy with ``table`` prepared for the given UDF arguments."""
    tables = [
        prepare_table(t, udf_arg_columns) if t.name == table else t
        for t in database.tables.values()
    ]
    return Database(database.name, tables, database.foreign_keys)
