"""UDF compilation: static cost analysis + lightweight instrumentation.

Interpreting UDF code per row would dominate benchmark build time, so we
take the approach a real engine would: compile the UDF once, but first
rewrite its AST so every *basic block* increments a counter on entry.
The per-operation cost of each block is known statically, so the cost
trace of a whole batch is ``block_entry_counts @ static_cost_matrix`` —
exact for straight-line code, and per-iteration-exact for loops, at the
price of one list-index increment per block entry.

Attribution rules (mirroring how the paper's node types charge work):

* expression operators in plain statements → the enclosing block;
* an ``if`` statement charges one ``branch`` op to the enclosing block
  (its test's arithmetic also lands there);
* a ``for`` loop charges its ``range(...)`` argument expressions to the
  enclosing block and one ``loop_iter`` per body entry;
* a ``while`` loop charges its test to the *body* block (the test is
  re-evaluated each iteration) plus one ``loop_iter`` per entry;
* ``return`` charges one ``return`` op.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import UDFError
from repro.udf.trace import OP_KINDS

#: Builtins a UDF may call; anything else is rejected at compile time.
_ALLOWED_BUILTINS = {
    "abs": abs,
    "min": min,
    "max": max,
    "len": len,
    "int": int,
    "float": float,
    "round": round,
    "str": str,
    "range": range,
}

_MATH_MODULES = {"math"}
_NUMPY_MODULES = {"np", "numpy"}


@dataclass
class CompiledUDF:
    """A UDF ready for batched evaluation."""

    function: object  # callable(trace_list, *args)
    n_blocks: int
    #: (n_blocks, len(OP_KINDS)) static per-entry cost of each block.
    cost_matrix: np.ndarray
    arg_names: tuple[str, ...]


class _OpCounter(ast.NodeVisitor):
    """Counts traced operations inside a single expression."""

    def __init__(self) -> None:
        self.counts = {kind: 0.0 for kind in OP_KINDS}

    def visit_BinOp(self, node: ast.BinOp) -> None:
        self.counts["arith"] += 1
        self.generic_visit(node)

    def visit_UnaryOp(self, node: ast.UnaryOp) -> None:
        self.counts["arith"] += 1
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        self.counts["arith"] += len(node.ops)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id in _MATH_MODULES:
                self.counts["math_call"] += 1
            elif isinstance(base, ast.Name) and base.id in _NUMPY_MODULES:
                self.counts["numpy_call"] += 1
            else:
                # method call on a value — in our UDF subset this is
                # always a string method (upper/lower/replace/...).
                self.counts["string"] += 1
        elif isinstance(func, ast.Name):
            if func.id == "str":
                self.counts["string"] += 1
            elif func.id == "range":
                pass  # charged via loop_iter
            else:
                self.counts["arith"] += 1  # cheap builtin (abs/min/max/len/...)
        self.generic_visit(node)

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        self.counts["string"] += max(1, len(node.values))
        self.generic_visit(node)


def _expr_cost(node: ast.AST | None) -> dict[str, float]:
    counter = _OpCounter()
    if node is not None:
        counter.visit(node)
    return counter.counts


def _merge_into(target: dict[str, float], extra: dict[str, float]) -> None:
    for kind, amount in extra.items():
        target[kind] = target.get(kind, 0.0) + amount


class _Instrumenter:
    """Assigns block ids, computes static costs, rewrites statement lists."""

    def __init__(self) -> None:
        self.block_costs: list[dict[str, float]] = []

    def instrument_block(
        self, stmts: list[ast.stmt], entry_cost: dict[str, float]
    ) -> list[ast.stmt]:
        """Rewrite ``stmts`` as a counted block with the given fixed entry cost."""
        block_id = len(self.block_costs)
        cost = dict(entry_cost)
        self.block_costs.append(cost)  # reserve the slot before nested blocks
        new_stmts: list[ast.stmt] = [_counter_stmt(block_id)]
        for stmt in stmts:
            new_stmts.append(self._rewrite(stmt, cost))
        return new_stmts

    def _rewrite(self, stmt: ast.stmt, cost: dict[str, float]) -> ast.stmt:
        if isinstance(stmt, ast.If):
            _merge_into(cost, _expr_cost(stmt.test))
            cost["branch"] = cost.get("branch", 0.0) + 1
            stmt.body = self.instrument_block(stmt.body, {})
            if stmt.orelse:
                stmt.orelse = self.instrument_block(stmt.orelse, {})
            return stmt
        if isinstance(stmt, ast.For):
            _merge_into(cost, _expr_cost(stmt.iter))
            stmt.body = self.instrument_block(stmt.body, {"loop_iter": 1.0})
            if stmt.orelse:
                raise UDFError("for/else is not supported in UDFs")
            return stmt
        if isinstance(stmt, ast.While):
            body_cost = {"loop_iter": 1.0}
            _merge_into(body_cost, _expr_cost(stmt.test))
            stmt.body = self.instrument_block(stmt.body, body_cost)
            if stmt.orelse:
                raise UDFError("while/else is not supported in UDFs")
            return stmt
        if isinstance(stmt, ast.Return):
            _merge_into(cost, _expr_cost(stmt.value))
            cost["return"] = cost.get("return", 0.0) + 1
            return stmt
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr)):
            _merge_into(cost, _expr_cost(getattr(stmt, "value", None)))
            if isinstance(stmt, ast.AugAssign):
                cost["arith"] = cost.get("arith", 0.0) + 1
            return stmt
        if isinstance(stmt, (ast.Break, ast.Continue, ast.Pass)):
            return stmt
        raise UDFError(f"unsupported statement in UDF: {type(stmt).__name__}")


def _counter_stmt(block_id: int) -> ast.stmt:
    """``_trace[block_id] += 1``"""
    return ast.AugAssign(
        target=ast.Subscript(
            value=ast.Name(id="_trace", ctx=ast.Load()),
            slice=ast.Constant(value=block_id),
            ctx=ast.Store(),
        ),
        op=ast.Add(),
        value=ast.Constant(value=1),
    )


def compile_udf(source: str, function_name: str | None = None) -> CompiledUDF:
    """Parse, validate, instrument, and compile a scalar Python UDF.

    Returns a :class:`CompiledUDF` whose ``function`` takes a mutable trace
    list as its first argument followed by the UDF's own arguments.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise UDFError(f"UDF does not parse: {exc}") from exc
    func_defs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if not func_defs:
        raise UDFError("UDF source contains no function definition")
    if function_name is None:
        func = func_defs[0]
    else:
        matching = [f for f in func_defs if f.name == function_name]
        if not matching:
            raise UDFError(f"no function named {function_name!r} in UDF source")
        func = matching[0]

    arg_names = tuple(a.arg for a in func.args.args)
    instrumenter = _Instrumenter()
    func.body = instrumenter.instrument_block(func.body, {})
    func.args.args.insert(0, ast.arg(arg="_trace"))
    module = ast.Module(body=[func], type_ignores=[])
    ast.fix_missing_locations(module)

    namespace: dict[str, object] = {}
    env = {"math": math, "np": np, "numpy": np, "__builtins__": dict(_ALLOWED_BUILTINS)}
    exec(compile(module, filename=f"<udf:{func.name}>", mode="exec"), env, namespace)

    n_blocks = len(instrumenter.block_costs)
    cost_matrix = np.zeros((n_blocks, len(OP_KINDS)), dtype=np.float64)
    kind_index = {kind: i for i, kind in enumerate(OP_KINDS)}
    for block_id, costs in enumerate(instrumenter.block_costs):
        for kind, amount in costs.items():
            cost_matrix[block_id, kind_index[kind]] = amount

    return CompiledUDF(
        function=namespace[func.name],
        n_blocks=n_blocks,
        cost_matrix=cost_matrix,
        arg_names=arg_names,
    )
