"""Scalar Python UDF substrate: objects, generation, compilation, data prep."""

from repro.udf.compilation import CompiledUDF, compile_udf
from repro.udf.dataprep import fill_nulls, prepare_database, prepare_table
from repro.udf.generator import (
    UDFGenerator,
    UDFGeneratorConfig,
    generate_udf_for_table,
)
from repro.udf.trace import OP_KINDS, CostTrace
from repro.udf.udf import UDF, BranchInfo, LoopInfo

__all__ = [
    "UDF",
    "BranchInfo",
    "LoopInfo",
    "CompiledUDF",
    "CostTrace",
    "OP_KINDS",
    "UDFGenerator",
    "UDFGeneratorConfig",
    "compile_udf",
    "generate_udf_for_table",
    "fill_nulls",
    "prepare_database",
    "prepare_table",
]
