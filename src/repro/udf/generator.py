"""Synthetic UDF generator (§V of the paper).

Generates scalar Python UDFs over the columns of a given table, mimicking
the structure statistics of real-world UDFs reported by Gupta &
Ramachandra [1] and Table II of the paper:

* 0-3 branches, 0-3 loops, 10-150 arithmetic/string operations,
* calls into ``math`` and ``numpy``,
* branch conditions that test input arguments directly against literals
  drawn from the column's quantiles (so hit-ratios vary per query and are
  rewritable to SQL for the hit-ratio estimator).

Semantic correctness by construction: rather than post-hoc repairing data
(the paper adapts data to UDFs; see :mod:`repro.udf.dataprep` for the NULL
part), every generated arithmetic template is *total* — denominators are
``abs(x)+1``, ``math.log``/``sqrt`` arguments are wrapped in ``abs``, and
magnitudes are bounded with ``%`` so loops cannot overflow.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import UDFError
from repro.sql.expressions import CompareOp
from repro.storage.datatypes import DataType
from repro.storage.table import Table
from repro.udf.udf import UDF, BranchInfo, LoopInfo

_udf_id_counter = itertools.count()


@dataclass
class UDFGeneratorConfig:
    """Structure knobs, defaults matching Table II."""

    max_args: int = 3
    branch_weights: tuple[float, ...] = (0.35, 0.35, 0.2, 0.1)  # P(0..3 branches)
    loop_weights: tuple[float, ...] = (0.55, 0.3, 0.1, 0.05)  # P(0..3 loops)
    ops_range: tuple[int, int] = (10, 150)
    loop_iterations_range: tuple[int, int] = (5, 300)
    #: probability that a generated computation uses a library call
    math_call_prob: float = 0.25
    numpy_call_prob: float = 0.08
    #: force a specific structure (used by complexity-sweep experiments)
    force_branches: int | None = None
    force_loops: int | None = None
    force_ops: int | None = None


@dataclass
class _CodeBuilder:
    """Accumulates indented source lines and running op counts."""

    lines: list[str] = field(default_factory=list)
    op_counts: dict[str, float] = field(default_factory=dict)

    def add(self, indent: int, line: str, **ops: float) -> None:
        self.lines.append("    " * indent + line)
        for kind, amount in ops.items():
            self.op_counts[kind] = self.op_counts.get(kind, 0.0) + amount


_NUMERIC_BRANCH_OPS = (CompareOp.LT, CompareOp.LEQ, CompareOp.GT, CompareOp.GEQ)
_STRING_BRANCH_OPS = (CompareOp.EQ, CompareOp.NEQ)


class UDFGenerator:
    """Generates UDFs for a specific table."""

    def __init__(self, table: Table, rng: np.random.Generator,
                 config: UDFGeneratorConfig | None = None):
        self.table = table
        self.rng = rng
        self.config = config or UDFGeneratorConfig()
        # Candidate argument columns: anything but the PK/FK id columns.
        self.candidates = [
            c for c in table.columns if c.name != "id" and not c.name.endswith("_id")
        ] or [c for c in table.columns if c.name != "id"] or list(table.columns)

    # ------------------------------------------------------------------
    def generate(self) -> tuple[UDF, tuple[str, ...]]:
        """Generate one UDF; returns (udf, argument column names)."""
        cfg = self.config
        rng = self.rng
        n_args = int(rng.integers(1, min(cfg.max_args, len(self.candidates)) + 1))
        chosen = rng.choice(len(self.candidates), size=n_args, replace=False)
        arg_cols = [self.candidates[i] for i in sorted(chosen)]
        arg_types = tuple(c.dtype for c in arg_cols)

        n_branches = (
            cfg.force_branches
            if cfg.force_branches is not None
            else int(rng.choice(len(cfg.branch_weights), p=_norm(cfg.branch_weights)))
        )
        n_loops = (
            cfg.force_loops
            if cfg.force_loops is not None
            else int(rng.choice(len(cfg.loop_weights), p=_norm(cfg.loop_weights)))
        )
        target_ops = (
            cfg.force_ops
            if cfg.force_ops is not None
            else int(rng.integers(cfg.ops_range[0], cfg.ops_range[1] + 1))
        )

        name = f"udf_{next(_udf_id_counter)}"
        builder = _CodeBuilder()
        args = ", ".join(f"x{i}" for i in range(n_args))
        builder.add(0, f"def {name}({args}):")

        # Prelude: define the accumulator from the first argument.
        if arg_types[0] is DataType.STRING:
            builder.add(1, "v = float(len(x0))", arith=1, string=0)
        else:
            builder.add(1, "v = float(x0)", arith=1)

        # Budget ops across sections: prelude, branches, loops.
        sections = 1 + n_branches + n_loops
        per_section = max(2, target_ops // sections)

        self._emit_computations(builder, 1, per_section, arg_types)

        branches: list[BranchInfo] = []
        for _ in range(n_branches):
            branches.append(
                self._emit_branch(builder, arg_cols, arg_types, per_section)
            )

        loops: list[LoopInfo] = []
        for _ in range(n_loops):
            loops.append(self._emit_loop(builder, arg_types, per_section))

        builder.add(1, "return v", **{"return": 1})
        source = "\n".join(builder.lines) + "\n"

        udf = UDF(
            name=name,
            source=source,
            arg_types=arg_types,
            return_type=DataType.FLOAT,
            branches=tuple(branches),
            loops=tuple(loops),
            op_counts=dict(builder.op_counts),
        )
        udf.validate()
        return udf, tuple(c.name for c in arg_cols)

    # ------------------------------------------------------------------
    def _numeric_arg_indices(self, arg_types: tuple[DataType, ...]) -> list[int]:
        return [i for i, t in enumerate(arg_types) if t.is_numeric]

    def _emit_computations(
        self, builder: _CodeBuilder, indent: int, n_ops: int,
        arg_types: tuple[DataType, ...], loop_var: str | None = None,
    ) -> None:
        """Emit assignment statements totalling roughly ``n_ops`` operations."""
        rng = self.rng
        numeric = self._numeric_arg_indices(arg_types)
        strings = [i for i, t in enumerate(arg_types) if t is DataType.STRING]
        emitted = 0.0
        while emitted < n_ops:
            roll = rng.random()
            if strings and roll < 0.2:
                emitted += self._emit_string_op(builder, indent, strings)
            elif roll < 0.2 + self.config.numpy_call_prob:
                emitted += self._emit_numpy_op(builder, indent, numeric, loop_var)
            elif roll < 0.2 + self.config.numpy_call_prob + self.config.math_call_prob:
                emitted += self._emit_math_op(builder, indent, numeric, loop_var)
            else:
                emitted += self._emit_arith_op(builder, indent, numeric, loop_var)

    def _operand(self, numeric: list[int], loop_var: str | None) -> str:
        choices = ["v"] + [f"x{i}" for i in numeric]
        if loop_var is not None:
            choices.append(loop_var)
        picked = self.rng.choice(choices)
        if picked.startswith("x"):
            return f"float({picked})"
        return str(picked)

    def _emit_arith_op(
        self, builder: _CodeBuilder, indent: int, numeric: list[int],
        loop_var: str | None,
    ) -> float:
        rng = self.rng
        a = self._operand(numeric, loop_var)
        c1 = round(float(rng.uniform(0.1, 3.0)), 3)
        c2 = round(float(rng.uniform(1.0, 997.0)), 1)
        template = int(rng.integers(0, 4))
        if template == 0:
            builder.add(indent, f"v = (v * {c1} + {a}) % {c2}", arith=3)
            return 3
        if template == 1:
            builder.add(indent, f"v = v + {a} / (abs({a}) + 1.0)", arith=4)
            return 4
        if template == 2:
            builder.add(indent, f"v = (v + {a}) % {c2} - {c1}", arith=3)
            return 3
        builder.add(indent, f"v = abs(v - {a}) % {c2}", arith=3)
        return 3

    def _emit_math_op(
        self, builder: _CodeBuilder, indent: int, numeric: list[int],
        loop_var: str | None,
    ) -> float:
        rng = self.rng
        a = self._operand(numeric, loop_var)
        fn = rng.choice(["sqrt", "log", "exp", "sin", "cos", "atan"])
        if fn == "sqrt":
            builder.add(indent, f"v = v + math.sqrt(abs({a}))", math_call=1, arith=2)
        elif fn == "log":
            builder.add(indent, f"v = v + math.log(abs({a}) + 1.0)", math_call=1, arith=3)
        elif fn == "exp":
            builder.add(indent, f"v = v + math.exp(-abs({a}) % 20.0)", math_call=1, arith=4)
        else:
            builder.add(indent, f"v = v + math.{fn}({a})", math_call=1, arith=1)
        return 3

    def _emit_numpy_op(
        self, builder: _CodeBuilder, indent: int, numeric: list[int],
        loop_var: str | None,
    ) -> float:
        a = self._operand(numeric, loop_var)
        fn = self.rng.choice(["sqrt", "log1p", "abs", "sign", "tanh"])
        builder.add(indent, f"v = v + float(np.{fn}(abs({a})))", numpy_call=1, arith=3)
        return 3

    def _emit_string_op(
        self, builder: _CodeBuilder, indent: int, strings: list[int]
    ) -> float:
        rng = self.rng
        arg = f"x{rng.choice(strings)}"
        template = int(rng.integers(0, 4))
        if template == 0:
            builder.add(indent, f"v = v + len({arg}.upper())", string=1, arith=2)
        elif template == 1:
            builder.add(indent, f"v = v + len({arg}.replace('a', 'xy'))", string=1, arith=2)
        elif template == 2:
            builder.add(indent, f"v = v + len({arg}.strip())", string=1, arith=2)
        else:
            builder.add(indent, f"v = v + float(len({arg})) * 0.5", string=0, arith=3)
        return 3

    # ------------------------------------------------------------------
    def _emit_branch(
        self, builder: _CodeBuilder, arg_cols, arg_types, n_ops: int
    ) -> BranchInfo:
        rng = self.rng
        # Pick the argument to test; prefer numeric columns.
        numeric = self._numeric_arg_indices(arg_types)
        if numeric and (not all(t is DataType.STRING for t in arg_types)):
            idx = int(rng.choice(numeric))
            op = _NUMERIC_BRANCH_OPS[int(rng.integers(0, len(_NUMERIC_BRANCH_OPS)))]
            literal = self._numeric_threshold(arg_cols[idx])
            test = f"x{idx} {op.value} {literal!r}"
        else:
            idx = int(rng.choice([i for i, t in enumerate(arg_types) if t is DataType.STRING]))
            op = _STRING_BRANCH_OPS[int(rng.integers(0, len(_STRING_BRANCH_OPS)))]
            literal = self._string_literal(arg_cols[idx])
            test = f"x{idx} {'==' if op is CompareOp.EQ else '!='} {literal!r}"
        has_else = bool(rng.random() < 0.5)
        builder.add(1, f"if {test}:", branch=1, arith=1)
        self._emit_computations(builder, 2, max(2, n_ops // (2 if has_else else 1)), arg_types)
        if has_else:
            builder.add(1, "else:")
            self._emit_computations(builder, 2, max(2, n_ops // 2), arg_types)
        return BranchInfo(arg_index=idx, op=op, literal=literal, has_else=has_else)

    def _numeric_threshold(self, column) -> float:
        values = column.non_null_values()
        if len(values) == 0:
            return 0.0
        q = float(self.rng.uniform(0.05, 0.95))
        threshold = float(np.quantile(values.astype(np.float64), q))
        if column.dtype is DataType.INT:
            return int(round(threshold))
        return round(threshold, 4)

    def _string_literal(self, column) -> str:
        values = column.non_null_values()
        if len(values) == 0:
            return ""
        return str(values[int(self.rng.integers(0, len(values)))])

    def _emit_loop(
        self, builder: _CodeBuilder, arg_types, n_ops: int
    ) -> LoopInfo:
        rng = self.rng
        lo, hi = self.config.loop_iterations_range
        # Log-uniform iteration counts: short loops are common, long rare.
        n_iter = int(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        kind = "for" if rng.random() < 0.8 else "while"
        body_ops = max(2, n_ops // max(1, n_iter // 10))
        body_ops = min(body_ops, 8)  # keep loop bodies realistic (§V: small bodies)
        if kind == "for":
            builder.add(1, f"for i in range({n_iter}):", arith=1)
            self._emit_computations(builder, 2, body_ops, arg_types, loop_var="i")
        else:
            builder.add(1, f"w = {n_iter}", arith=1)
            builder.add(1, "while w > 0:", arith=1)
            self._emit_computations(builder, 2, body_ops, arg_types, loop_var="w")
            builder.add(2, "w = w - 1", arith=1)
        return LoopInfo(kind=kind, n_iterations=n_iter)


def _norm(weights: tuple[float, ...]) -> np.ndarray:
    arr = np.asarray(weights, dtype=np.float64)
    total = arr.sum()
    if total <= 0:
        raise UDFError("branch/loop weights must sum to a positive value")
    return arr / total


def generate_udf_for_table(
    table: Table,
    rng: np.random.Generator,
    config: UDFGeneratorConfig | None = None,
) -> tuple[UDF, tuple[str, ...]]:
    """Convenience wrapper: one UDF over ``table``."""
    return UDFGenerator(table, rng, config).generate()
