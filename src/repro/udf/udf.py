"""The UDF object: source code + metadata + batched evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import UDFError
from repro.sql.expressions import CompareOp
from repro.storage.datatypes import DataType
from repro.udf.compilation import CompiledUDF, compile_udf
from repro.udf.trace import OP_KINDS, CostTrace


@dataclass(frozen=True)
class BranchInfo:
    """One top-level branch condition ``arg[arg_index] OP literal``.

    Branch conditions in generated UDFs always test an input argument
    directly, which is what makes them rewritable into SQL for the
    hit-ratio estimator (§III-B).
    """

    arg_index: int
    op: CompareOp
    literal: object
    #: True when the condition guards the if-body; the else-body is hit by
    #: the negation.
    has_else: bool = False


@dataclass(frozen=True)
class LoopInfo:
    """One loop in the UDF."""

    kind: str  # "for" | "while"
    n_iterations: int


@dataclass
class UDF:
    """A scalar Python UDF with static metadata.

    ``metadata`` fields (branches/loops/op counts) are produced by the
    generator; for hand-written UDFs they can be recovered from the CFG
    (see :mod:`repro.cfg`).
    """

    name: str
    source: str
    arg_types: tuple[DataType, ...]
    return_type: DataType = DataType.FLOAT
    branches: tuple[BranchInfo, ...] = ()
    loops: tuple[LoopInfo, ...] = ()
    #: Static operation counts over the whole body (upper bound per row).
    op_counts: dict[str, float] = field(default_factory=dict)
    _compiled: CompiledUDF | None = field(default=None, repr=False, compare=False)

    @property
    def n_args(self) -> int:
        return len(self.arg_types)

    @property
    def compiled(self) -> CompiledUDF:
        if self._compiled is None:
            self._compiled = compile_udf(self.source, self.name)
        return self._compiled

    def evaluate_batch(
        self, rows: list[tuple], deduplicate: bool = True
    ) -> tuple[list, CostTrace]:
        """Evaluate the UDF row-by-row.

        Returns the output values (``None`` for NULL inputs or runtime
        errors) and the aggregated :class:`CostTrace` of all invocations.

        When ``deduplicate`` is on (default), identical argument tuples are
        evaluated once and their cost trace is scaled by multiplicity — an
        exact optimization because UDFs in this substrate are pure, and the
        *accounted* cost still reflects per-row invocation as in a real
        engine.
        """
        compiled = self.compiled
        function = compiled.function
        n_blocks = compiled.n_blocks
        values: list = [None] * len(rows)
        block_totals = np.zeros(n_blocks, dtype=np.float64)

        if deduplicate:
            groups: dict[tuple, list[int]] = {}
            for i, row in enumerate(rows):
                groups.setdefault(row, []).append(i)
            iterator = groups.items()
        else:
            iterator = ((row, [i]) for i, row in enumerate(rows))

        for row, positions in iterator:
            if any(v is None for v in row):
                continue  # NULL input -> NULL output
            local = [0] * n_blocks
            try:
                value = function(local, *row)
            except Exception:  # noqa: BLE001 - runtime errors yield NULL
                value = None
            for i in positions:
                values[i] = value
            block_totals += float(len(positions)) * np.asarray(local, dtype=np.float64)

        trace = CostTrace()
        totals = block_totals @ compiled.cost_matrix
        for kind, amount in zip(OP_KINDS, totals):
            if amount:
                trace.add(kind, float(amount))
        trace.add("invocation", float(len(rows)))
        return values, trace

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_compiled"] = None  # compiled functions are not picklable
        return state

    def evaluate_one(self, *args) -> object:
        """Convenience single-row evaluation (no trace)."""
        values, _ = self.evaluate_batch([tuple(args)])
        return values[0]

    def validate(self) -> None:
        """Compile eagerly and check metadata consistency."""
        compiled = self.compiled
        if len(compiled.arg_names) != len(self.arg_types):
            raise UDFError(
                f"UDF {self.name!r}: source takes {len(compiled.arg_names)} args, "
                f"metadata declares {len(self.arg_types)}"
            )

    def __deepcopy__(self, memo):  # compiled functions aren't deep-copyable
        clone = UDF(
            name=self.name,
            source=self.source,
            arg_types=self.arg_types,
            return_type=self.return_type,
            branches=self.branches,
            loops=self.loops,
            op_counts=dict(self.op_counts),
        )
        clone._compiled = self._compiled
        memo[id(self)] = clone
        return clone
