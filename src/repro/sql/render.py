"""Render declarative queries and plans as executable SQL text.

Historically this module was presentational — examples, logs, and papers
talk SQL while the executor works on plan trees. With the pluggable
execution backends (:mod:`repro.exec`) the rendered text must now
*round-trip*: :func:`plan_to_sql` produces SQL that DuckDB executes with
the same semantics as the simulator, so literal rendering is exact
(``repr`` floats, escaped ``LIKE`` metacharacters) and every operator
renders as a nested subquery that preserves the plan's shape, including
the UDF placement the advisor decided on.

Naming contract: intermediate columns are aliased to their *qualified*
name (``"table.column"``, a quoted identifier) — exactly the keys a
:class:`~repro.sql.relation.Relation` uses — so results read back from a
real engine are column-compatible with simulator results.
"""

from __future__ import annotations

import math

from repro.exceptions import PlanError
from repro.sql.expressions import CompareOp, Conjunction
from repro.sql.plan import (
    Aggregate,
    AggFunc,
    Filter,
    HashJoin,
    PlanNode,
    Project,
    Scan,
    UDFAggregate,
    UDFFilter,
    UDFProject,
)
from repro.sql.query import Query, UDFRole

#: Characters with meaning inside a ``LIKE`` pattern. The simulator's
#: LIKE is a literal prefix match, so when rendering to SQL the prefix
#: must be escaped — a ``%`` or ``_`` inside the literal would silently
#: widen the match on a real engine.
_LIKE_ESCAPE = "\\"


def quote_ident(name: str) -> str:
    """A double-quoted SQL identifier (embedded quotes doubled)."""
    return '"' + name.replace('"', '""') + '"'


def _literal_sql(value: object) -> str:
    """Render a Python literal exactly.

    Floats use ``repr`` (shortest round-trip form — ``%g`` truncates to
    six significant digits and changes comparison results); non-finite
    floats render as explicit casts so the text stays parseable.
    """
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        if math.isnan(value):
            return "CAST('NaN' AS DOUBLE)"
        if math.isinf(value):
            sign = "-" if value < 0 else ""
            return f"CAST('{sign}Infinity' AS DOUBLE)"
        return repr(value)
    return str(value)


def like_pattern(prefix: str) -> str:
    """The SQL ``LIKE`` pattern matching strings that start with
    ``prefix`` literally: metacharacters escaped, trailing ``%``."""
    escaped = (
        prefix.replace(_LIKE_ESCAPE, _LIKE_ESCAPE + _LIKE_ESCAPE)
        .replace("%", _LIKE_ESCAPE + "%")
        .replace("_", _LIKE_ESCAPE + "_")
    )
    return escaped + "%"


def _predicate_sql(column: str, op: CompareOp, literal: object) -> str:
    if op is CompareOp.LIKE:
        pattern = _literal_sql(like_pattern(str(literal)))
        # SQL quoted literals don't backslash-escape: one backslash char
        # is the (required, length-1) escape character.
        return f"{column} LIKE {pattern} ESCAPE '{_LIKE_ESCAPE}'"
    return f"{column} {op.value} {_literal_sql(literal)}"


def query_to_sql(query: Query) -> str:
    """The SQL text of a :class:`~repro.sql.query.Query`.

    This is the *declarative* rendering (flat FROM list + WHERE
    conjunction) — the engine's optimizer picks the plan, including the
    UDF placement. Use :func:`plan_to_sql` to pin a placement.
    """
    udf = query.udf
    select = "COUNT(*)"
    if query.agg is not None and query.agg.func is not AggFunc.COUNT:
        target = query.agg.column.qualified if query.agg.column else "*"
        select = f"{query.agg.func.value.upper()}({target})"
    if udf is not None and udf.role is UDFRole.PROJECTION:
        args = ", ".join(f"{udf.input_table}.{c}" for c in udf.input_columns)
        select = f"{select}, {udf.udf.name}({args})"

    lines = [f"SELECT {select}", f"FROM {', '.join(query.tables)}"]
    conditions: list[str] = []
    for join in query.joins:
        conditions.append(f"{join.left.qualified} = {join.right.qualified}")
    for flt in query.filters:
        conditions.append(_predicate_sql(flt.column.qualified, flt.op, flt.literal))
    if udf is not None and udf.role is UDFRole.FILTER:
        args = ", ".join(f"{udf.input_table}.{c}" for c in udf.input_columns)
        conditions.append(
            _predicate_sql(f"{udf.udf.name}({args})", udf.op, udf.literal)
        )
    if conditions:
        lines.append("WHERE " + "\n  AND ".join(conditions))
    return "\n".join(lines) + ";"


# ----------------------------------------------------------------------
# plan -> SQL (structural rendering for execution backends)
class _PlanRenderer:
    """Renders a plan tree bottom-up as nested subqueries.

    Every subquery exposes columns under their qualified-name aliases,
    so parent operators reference ``"table.column"`` regardless of
    nesting depth. Each derived table gets a unique alias (required by
    SQL, unused by references).
    """

    def __init__(self, database) -> None:
        self.database = database
        self._alias = 0

    def _next_alias(self, prefix: str) -> str:
        self._alias += 1
        return f"{prefix}{self._alias}"

    def render(self, node: PlanNode) -> str:
        if isinstance(node, Scan):
            return self._scan(node)
        if isinstance(node, Filter):
            return self._filter(node)
        if isinstance(node, HashJoin):
            return self._join(node)
        if isinstance(node, UDFFilter):
            return self._udf_filter(node)
        if isinstance(node, UDFProject):
            return self._udf_project(node)
        if isinstance(node, UDFAggregate):
            raise PlanError(
                "UDFAggregate cannot be rendered to SQL: aggregate UDFs "
                "consume whole columns and exist only on the simulator "
                "backend (see DESIGN.md §13)"
            )
        if isinstance(node, Aggregate):
            return self._aggregate(node)
        if isinstance(node, Project):
            return self._project(node)
        raise PlanError(f"cannot render plan node {type(node).__name__}")

    def _scan(self, node: Scan) -> str:
        table = self.database.table(node.table)
        cols = ", ".join(
            f"{quote_ident(c)} AS {quote_ident(f'{node.table}.{c}')}"
            for c in table.column_names
        )
        return f"SELECT {cols} FROM {quote_ident(node.table)}"

    def _subquery(self, node: PlanNode, prefix: str) -> str:
        return f"({self.render(node)}) AS {self._next_alias(prefix)}"

    def _filter(self, node: Filter) -> str:
        conds = _conjunction_sql(node.predicate)
        return f"SELECT * FROM {self._subquery(node.child, 'f')} WHERE {conds}"

    def _join(self, node: HashJoin) -> str:
        left = self._subquery(node.left, "jl")
        right = self._subquery(node.right, "jr")
        on = (
            f"{quote_ident(node.left_key.qualified)} = "
            f"{quote_ident(node.right_key.qualified)}"
        )
        return f"SELECT * FROM {left} INNER JOIN {right} ON {on}"

    def _udf_call(self, node) -> str:
        args = ", ".join(quote_ident(ref.qualified) for ref in node.input_columns)
        return f"{node.udf.name}({args})"

    def _udf_filter(self, node: UDFFilter) -> str:
        pred = _predicate_sql(self._udf_call(node), node.op, node.literal)
        return f"SELECT * FROM {self._subquery(node.child, 'u')} WHERE {pred}"

    def _udf_project(self, node: UDFProject) -> str:
        call = self._udf_call(node)
        alias = quote_ident(node.output_name)
        return (
            f"SELECT *, {call} AS {alias} "
            f"FROM {self._subquery(node.child, 'p')}"
        )

    def _aggregate(self, node: Aggregate) -> str:
        if node.func is AggFunc.COUNT:
            target = "*"
        elif node.column is None:
            raise PlanError(f"{node.func.value} requires a column")
        else:
            target = quote_ident(node.column.qualified)
        call = f"{node.func.value.upper()}({target}) AS {quote_ident('agg')}"
        child = self._subquery(node.child, "a")
        if node.group_by is None:
            return f"SELECT {call} FROM {child}"
        key = quote_ident(node.group_by.qualified)
        return (
            f"SELECT {key} AS {quote_ident('group')}, {call} "
            f"FROM {child} GROUP BY {key}"
        )

    def _project(self, node: Project) -> str:
        cols = ", ".join(quote_ident(c) for c in node.columns)
        return f"SELECT {cols} FROM {self._subquery(node.child, 's')}"


def _conjunction_sql(predicate: Conjunction) -> str:
    return " AND ".join(
        _predicate_sql(quote_ident(p.column.qualified), p.op, p.literal)
        for p in predicate.predicates
    )


def plan_to_sql(root: PlanNode, database) -> str:
    """Executable SQL for a plan tree, preserving its structure.

    The UDF placement is pinned *syntactically* (the UDF predicate sits
    in the subquery level matching its plan position). A real engine's
    optimizer may still flatten subqueries; for the workloads this repo
    generates, DuckDB evaluates opaque Python UDF predicates where they
    are written.
    """
    return _PlanRenderer(database).render(root) + ";"
