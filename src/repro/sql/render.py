"""Render declarative queries and plans as SQL text.

Purely presentational: the executor works on plan trees, but examples,
logs, and papers talk SQL. The rendered dialect matches the paper's
figures (DuckDB-flavored, with the UDF called inline).
"""

from __future__ import annotations

from repro.sql.expressions import CompareOp
from repro.sql.plan import AggFunc
from repro.sql.query import Query, UDFRole


def _literal_sql(value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _predicate_sql(column: str, op: CompareOp, literal: object) -> str:
    if op is CompareOp.LIKE:
        return f"{column} LIKE {_literal_sql(str(literal) + '%')}"
    return f"{column} {op.value} {_literal_sql(literal)}"


def query_to_sql(query: Query) -> str:
    """The SQL text of a :class:`~repro.sql.query.Query`."""
    udf = query.udf
    select = "COUNT(*)"
    if query.agg is not None and query.agg.func is not AggFunc.COUNT:
        target = query.agg.column.qualified if query.agg.column else "*"
        select = f"{query.agg.func.value.upper()}({target})"
    if udf is not None and udf.role is UDFRole.PROJECTION:
        args = ", ".join(f"{udf.input_table}.{c}" for c in udf.input_columns)
        select = f"{select}, {udf.udf.name}({args})"

    lines = [f"SELECT {select}", f"FROM {', '.join(query.tables)}"]
    conditions: list[str] = []
    for join in query.joins:
        conditions.append(f"{join.left.qualified} = {join.right.qualified}")
    for flt in query.filters:
        conditions.append(_predicate_sql(flt.column.qualified, flt.op, flt.literal))
    if udf is not None and udf.role is UDFRole.FILTER:
        args = ", ".join(f"{udf.input_table}.{c}" for c in udf.input_columns)
        conditions.append(
            _predicate_sql(f"{udf.udf.name}({args})", udf.op, udf.literal)
        )
    if conditions:
        lines.append("WHERE " + "\n  AND ".join(conditions))
    return "\n".join(lines) + ";"
