"""Vectorized SPJA executor with per-operator work accounting.

Executes a :class:`~repro.sql.plan.PlanNode` tree against a
:class:`~repro.storage.database.Database`. Alongside the result relation it
produces:

* ``true_card`` annotations on every plan node (actual output rows),
* a :class:`~repro.sql.costmodel.WorkCounters` ledger, converted into a
  simulated runtime by the calibrated cost model (DESIGN.md §6).

Scalar UDFs are evaluated row-by-row through the UDF's interpreter, which
returns both values and a per-operation cost trace — the reproduction's
stand-in for DuckDB's Python-UDF execution cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ExecutionError, PlanError
from repro.sql.costmodel import WorkCounters, simulated_runtime
from repro.sql.expressions import _compare
from repro.sql.plan import (
    Aggregate,
    AggFunc,
    Filter,
    HashJoin,
    PlanNode,
    Project,
    Scan,
    UDFAggregate,
    UDFFilter,
    UDFProject,
)
from repro.sql.relation import Relation
from repro.storage.column import Column
from repro.storage.database import Database
from repro.storage.datatypes import DataType


@dataclass
class ExecutionResult:
    """Everything the rest of the system needs from one query execution."""

    relation: Relation
    counters: WorkCounters
    runtime: float
    #: node_id -> actual output cardinality
    true_cards: dict[int, int]


class Executor:
    """Executes plans against one database."""

    def __init__(self, database: Database):
        self.database = database

    def execute(self, root: PlanNode, noise_seed: int | None = None) -> ExecutionResult:
        """Run the plan; annotate ``true_card`` on every node."""
        counters = WorkCounters()
        relation = self._execute(root, counters)
        runtime = simulated_runtime(counters, noise_seed)
        true_cards = {node.node_id: node.true_card for node in root.walk()}
        return ExecutionResult(relation, counters, runtime, true_cards)

    # ------------------------------------------------------------------
    def _execute(self, node: PlanNode, counters: WorkCounters) -> Relation:
        if isinstance(node, Scan):
            result = self._scan(node, counters)
        elif isinstance(node, Filter):
            result = self._filter(node, counters)
        elif isinstance(node, HashJoin):
            result = self._hash_join(node, counters)
        elif isinstance(node, UDFFilter):
            result = self._udf_filter(node, counters)
        elif isinstance(node, UDFProject):
            result = self._udf_project(node, counters)
        elif isinstance(node, UDFAggregate):
            result = self._udf_aggregate(node, counters)
        elif isinstance(node, Aggregate):
            result = self._aggregate(node, counters)
        elif isinstance(node, Project):
            result = self._project(node, counters)
        else:
            raise PlanError(f"unknown plan node {type(node).__name__}")
        node.true_card = result.num_rows
        return result

    def _scan(self, node: Scan, counters: WorkCounters) -> Relation:
        table = self.database.table(node.table)
        counters.add("scan_row", len(table))
        return Relation.from_table(table)

    def _filter(self, node: Filter, counters: WorkCounters) -> Relation:
        child = self._execute(node.child, counters)
        counters.add("filter_row", child.num_rows * max(1, len(node.predicate.predicates)))
        mask = node.predicate.evaluate(child)
        return child.filter(mask)

    def _hash_join(self, node: HashJoin, counters: WorkCounters) -> Relation:
        left = self._execute(node.left, counters)
        right = self._execute(node.right, counters)
        counters.add("join_build_row", right.num_rows)
        counters.add("join_probe_row", left.num_rows)

        left_col = left.column(node.left_key.qualified)
        right_col = right.column(node.right_key.qualified)
        # Build side: hash the right input.
        buckets: dict[object, list[int]] = {}
        r_values, r_valid = right_col.values, right_col.valid
        for i in range(right.num_rows):
            if r_valid[i]:
                buckets.setdefault(r_values[i], []).append(i)
        l_idx: list[int] = []
        r_idx: list[int] = []
        l_values, l_valid = left_col.values, left_col.valid
        for i in range(left.num_rows):
            if not l_valid[i]:
                continue
            matches = buckets.get(l_values[i])
            if matches:
                l_idx.extend([i] * len(matches))
                r_idx.extend(matches)
        l_indices = np.asarray(l_idx, dtype=np.int64)
        r_indices = np.asarray(r_idx, dtype=np.int64)
        return left.take(l_indices).merge(right.take(r_indices))

    def _udf_rows(self, node, relation: Relation) -> list[tuple]:
        names = [ref.qualified for ref in node.input_columns]
        return relation.rows(names)

    def _udf_filter(self, node: UDFFilter, counters: WorkCounters) -> Relation:
        child = self._execute(node.child, counters)
        counters.add(
            "udf_materialize_cell", child.num_rows * len(child.column_names)
        )
        rows = self._udf_rows(node, child)
        values, trace = node.udf.evaluate_batch(rows)
        counters.merge(trace.to_counters())
        arr = np.asarray(values, dtype=object)
        valid = np.array([v is not None for v in arr], dtype=bool)
        out = np.zeros(len(arr), dtype=np.float64)
        out[valid] = [float(v) for v in arr[valid]]
        mask = _compare(out, node.op, node.literal) & valid
        counters.add("filter_row", child.num_rows)
        return child.filter(mask)

    def _udf_project(self, node: UDFProject, counters: WorkCounters) -> Relation:
        child = self._execute(node.child, counters)
        counters.add(
            "udf_materialize_cell", child.num_rows * len(child.column_names)
        )
        rows = self._udf_rows(node, child)
        values, trace = node.udf.evaluate_batch(rows)
        counters.merge(trace.to_counters())
        counters.add("project_row", child.num_rows)
        column = _column_from_udf_values(node.output_name, values)
        return child.with_column(node.output_name, column)

    def _udf_aggregate(self, node: UDFAggregate, counters: WorkCounters) -> Relation:
        child = self._execute(node.child, counters)
        counters.add(
            "udf_materialize_cell",
            child.num_rows * max(1, len(node.input_columns)),
        )
        columns = []
        for ref in node.input_columns:
            col = child.column(ref.qualified)
            columns.append([col.python_value(i) for i in range(child.num_rows)])
        values, trace = node.udf.evaluate_batch([tuple(columns)], deduplicate=False)
        counters.merge(trace.to_counters())
        counters.add("agg_row", child.num_rows)
        value = values[0]
        result = np.array([float(value) if value is not None else 0.0])
        return Relation(
            {node.output_name: Column(node.output_name, DataType.FLOAT, result,
                                      np.array([value is not None]))}
        )

    def _aggregate(self, node: Aggregate, counters: WorkCounters) -> Relation:
        child = self._execute(node.child, counters)
        counters.add("agg_row", child.num_rows)
        if node.group_by is None:
            value = _aggregate_all(node, child)
            return Relation(
                {"agg": Column("agg", DataType.FLOAT, np.array([value], dtype=np.float64))}
            )
        key_col = child.column(node.group_by.qualified)
        groups: dict[object, list[int]] = {}
        for i in range(child.num_rows):
            if key_col.valid[i]:
                groups.setdefault(key_col.values[i], []).append(i)
        keys = list(groups)
        aggs = np.empty(len(keys), dtype=np.float64)
        for j, key in enumerate(keys):
            sub = child.take(np.asarray(groups[key], dtype=np.int64))
            aggs[j] = _aggregate_all(node, sub)
        key_values = np.array(keys, dtype=object)
        return Relation(
            {
                "group": Column("group", key_col.dtype, key_values),
                "agg": Column("agg", DataType.FLOAT, aggs),
            }
        )

    def _project(self, node: Project, counters: WorkCounters) -> Relation:
        child = self._execute(node.child, counters)
        counters.add("project_row", child.num_rows)
        return child.select(node.columns)


def _aggregate_all(node: Aggregate, relation: Relation) -> float:
    if node.func is AggFunc.COUNT:
        return float(relation.num_rows)
    if node.column is None:
        raise PlanError(f"{node.func.value} requires a column")
    name = node.column.qualified
    col = relation.column(name) if name in relation else relation.column(node.column.column)
    values = col.non_null_values()
    if len(values) == 0:
        return 0.0
    numeric = values.astype(np.float64)
    if node.func is AggFunc.SUM:
        return float(numeric.sum())
    if node.func is AggFunc.AVG:
        return float(numeric.mean())
    if node.func is AggFunc.MIN:
        return float(numeric.min())
    if node.func is AggFunc.MAX:
        return float(numeric.max())
    raise ExecutionError(f"unsupported aggregate {node.func}")


def _column_from_udf_values(name: str, values: list) -> Column:
    """Build a nullable column from raw UDF outputs."""
    valid = np.array([v is not None for v in values], dtype=bool)
    non_null = [v for v in values if v is not None]
    if non_null and all(isinstance(v, str) for v in non_null):
        data = np.array([v if v is not None else "" for v in values], dtype=object)
        return Column(name, DataType.STRING, data, valid)
    data = np.array([float(v) if v is not None else 0.0 for v in values], dtype=np.float64)
    return Column(name, DataType.FLOAT, data, valid)
