"""Logical/physical query plan operators.

A plan is a tree of :class:`PlanNode` instances. Nodes carry two
cardinality annotations that the rest of the system reads and writes:

* ``est_card`` — the estimate produced by a cardinality estimator
  (:mod:`repro.stats`); this is what the learned cost model is fed.
* ``true_card`` — the actual output cardinality observed by the executor.

The UDF-specific operators (:class:`UDFFilter`, :class:`UDFProject`) are
the paper's object of study: ``UDFFilter`` additionally records whether its
estimate is even *defined* (post-UDF cardinalities are unknowable, §IV).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.sql.expressions import ColumnRef, CompareOp, Conjunction

if TYPE_CHECKING:  # pragma: no cover
    from repro.udf.udf import UDF


class AggFunc(enum.Enum):
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


_node_counter = itertools.count()


@dataclass
class PlanNode:
    """Base class for plan operators."""

    # Populated by annotators / the executor. ``None`` = not yet known.
    est_card: float | None = field(default=None, init=False)
    true_card: int | None = field(default=None, init=False)
    node_id: int = field(default_factory=lambda: next(_node_counter), init=False)

    @property
    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def walk(self) -> Iterator["PlanNode"]:
        """Post-order traversal (children before parents)."""
        for child in self.children:
            yield from child.walk()
        yield self

    @property
    def kind(self) -> str:
        return type(self).__name__

    def copy_tree(self) -> "PlanNode":
        """Deep-copy the plan structure, resetting annotations."""
        import copy

        clone = copy.deepcopy(self)
        for node in clone.walk():
            node.est_card = None
            node.true_card = None
            node.node_id = next(_node_counter)
        return clone


@dataclass
class Scan(PlanNode):
    """Full scan of a base table."""

    table: str = ""

    def __post_init__(self) -> None:
        assert self.table, "Scan requires a table name"


@dataclass
class Filter(PlanNode):
    """Conjunctive predicate filter over plain columns."""

    child: PlanNode = None  # type: ignore[assignment]
    predicate: Conjunction = None  # type: ignore[assignment]
    #: True when this filter consumes the output column of a UDF. This is
    #: the `on-udf` feature of the paper (§III-C, ablation step 3).
    on_udf: bool = False

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class HashJoin(PlanNode):
    """Equi-join; the right side is built into a hash table."""

    left: PlanNode = None  # type: ignore[assignment]
    right: PlanNode = None  # type: ignore[assignment]
    left_key: ColumnRef = None  # type: ignore[assignment]
    right_key: ColumnRef = None  # type: ignore[assignment]

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass
class UDFFilter(PlanNode):
    """Filter of the form ``udf(cols...) OP literal``.

    The output cardinality of this operator cannot be estimated (the UDF is
    a black box to the DBMS); downstream ``est_card`` values are therefore
    produced by the selectivity-enumeration machinery of the advisor.
    """

    child: PlanNode = None  # type: ignore[assignment]
    udf: "UDF" = None  # type: ignore[assignment]
    input_columns: tuple[ColumnRef, ...] = ()
    op: CompareOp = CompareOp.LEQ
    literal: object = 0
    #: Selectivity assumed by the advisor when iterating over the unknown
    #: UDF-filter selectivity (§IV-B); ``None`` means "not assumed".
    assumed_selectivity: float | None = None

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class UDFProject(PlanNode):
    """Projection that adds ``output_name = udf(cols...)`` to each row."""

    child: PlanNode = None  # type: ignore[assignment]
    udf: "UDF" = None  # type: ignore[assignment]
    input_columns: tuple[ColumnRef, ...] = ()
    output_name: str = "udf_out"

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class UDFAggregate(PlanNode):
    """Aggregation implemented by a UDF over whole input columns.

    The paper scopes GRACEFUL to scalar UDFs but sketches the extension to
    aggregate UDFs "by introducing additional node types describing the
    aggregation operation" (§II-B); this operator and the AGG_UDF graph
    node type implement that sketch. The UDF receives one *list* per input
    column and returns a single value.
    """

    child: PlanNode = None  # type: ignore[assignment]
    udf: "UDF" = None  # type: ignore[assignment]
    input_columns: tuple[ColumnRef, ...] = ()
    output_name: str = "udf_agg"

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class Aggregate(PlanNode):
    """Ungrouped or single-column-grouped aggregation."""

    child: PlanNode = None  # type: ignore[assignment]
    func: AggFunc = AggFunc.COUNT
    column: ColumnRef | None = None  # None for COUNT(*)
    group_by: ColumnRef | None = None

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class Project(PlanNode):
    """Column pruning."""

    child: PlanNode = None  # type: ignore[assignment]
    columns: tuple[str, ...] = ()

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


def plan_tables(root: PlanNode) -> list[str]:
    """All base tables scanned by a plan, in scan order."""
    return [node.table for node in root.walk() if isinstance(node, Scan)]


def find_nodes(root: PlanNode, kind: type) -> list[PlanNode]:
    return [node for node in root.walk() if isinstance(node, kind)]


def plan_depth(root: PlanNode) -> int:
    if not root.children:
        return 1
    return 1 + max(plan_depth(c) for c in root.children)


def format_plan(root: PlanNode, indent: int = 0) -> str:
    """Human-readable plan string with cardinality annotations."""
    parts = [f"{'  ' * indent}{_describe(root)}"]
    for child in root.children:
        parts.append(format_plan(child, indent + 1))
    return "\n".join(parts)


def _describe(node: PlanNode) -> str:
    extra = ""
    if isinstance(node, Scan):
        extra = f" {node.table}"
    elif isinstance(node, Filter):
        extra = f" [{node.predicate}]" + (" (on-udf)" if node.on_udf else "")
    elif isinstance(node, HashJoin):
        extra = f" [{node.left_key} = {node.right_key}]"
    elif isinstance(node, UDFFilter):
        extra = f" [udf(...) {node.op.value} {node.literal!r}]"
    elif isinstance(node, UDFProject):
        extra = f" [{node.output_name} = udf(...)]"
    elif isinstance(node, Aggregate):
        col = node.column.qualified if node.column else "*"
        extra = f" [{node.func.value}({col})]"
    cards = f" est={node.est_card!r} true={node.true_card!r}"
    return f"{node.kind}{extra}{cards}"
