"""Planner: lowers a declarative :class:`~repro.sql.query.Query` to a plan.

Join ordering is deterministic left-deep: the UDF's input table (or the
first table) is the build start, and remaining tables attach in BFS order
over the query's join edges. Non-UDF filters are pushed onto their table's
scan (the textbook heuristic). The *UDF filter* placement is an explicit
parameter — exactly the decision the paper's advisor makes.
"""

from __future__ import annotations

from repro.exceptions import PlanError
from repro.sql.expressions import Conjunction, Predicate
from repro.sql.plan import (
    Aggregate,
    Filter,
    HashJoin,
    PlanNode,
    Scan,
    UDFFilter,
    UDFProject,
)
from repro.sql.query import Query, UDFPlacement, UDFRole


def build_plan(query: Query, placement: UDFPlacement = UDFPlacement.PUSH_DOWN) -> PlanNode:
    """Build an executable plan for ``query`` with the given UDF placement.

    For UDF-projection queries (and non-UDF queries) the placement argument
    is irrelevant; the UDF projection always runs above the joins, mirroring
    how DuckDB evaluates projected UDFs once per result row.
    """
    query.validate()
    join_order = _join_order(query)
    udf_is_filter = query.has_udf and query.udf.role is UDFRole.FILTER

    # Position of the UDF filter in the join pipeline: number of joins
    # executed *before* the UDF filter applies.
    n_joins = len(join_order)
    if not udf_is_filter:
        udf_after_joins = n_joins
    elif placement is UDFPlacement.PUSH_DOWN:
        udf_after_joins = 0
    elif placement is UDFPlacement.INTERMEDIATE:
        udf_after_joins = max(1, n_joins // 2) if n_joins else 0
    else:
        udf_after_joins = n_joins

    base_table = query.udf.input_table if query.has_udf else query.tables[0]
    node = _scan_with_filters(query, base_table)
    if udf_is_filter and udf_after_joins == 0:
        node = _udf_filter_node(query, node)

    for i, join in enumerate(join_order):
        other = join.right.table if _covers(node, join.left.table) else join.left.table
        left_key, right_key = (
            (join.left, join.right) if _covers(node, join.left.table) else (join.right, join.left)
        )
        right = _scan_with_filters(query, other)
        node = HashJoin(left=node, right=right, left_key=left_key, right_key=right_key)
        if udf_is_filter and (i + 1) == udf_after_joins:
            node = _udf_filter_node(query, node)

    if query.has_udf and query.udf.role is UDFRole.PROJECTION:
        node = UDFProject(
            child=node,
            udf=query.udf.udf,
            input_columns=query.udf.column_refs(),
            output_name="udf_out",
        )

    if query.agg is not None:
        node = Aggregate(child=node, func=query.agg.func, column=query.agg.column)
    return node


def _covers(node: PlanNode, table: str) -> bool:
    from repro.sql.plan import plan_tables

    return table in plan_tables(node)


def _scan_with_filters(query: Query, table: str) -> PlanNode:
    node: PlanNode = Scan(table=table)
    filters = query.filters_for(table)
    if filters:
        predicate = Conjunction(
            tuple(Predicate(f.column, f.op, f.literal) for f in filters)
        )
        node = Filter(child=node, predicate=predicate)
    return node


def _udf_filter_node(query: Query, child: PlanNode) -> UDFFilter:
    spec = query.udf
    return UDFFilter(
        child=child,
        udf=spec.udf,
        input_columns=spec.column_refs(),
        op=spec.op,
        literal=spec.literal,
    )


def _join_order(query: Query) -> list:
    """BFS order over the join graph, rooted at the UDF input table."""
    if not query.joins:
        return []
    root = query.udf.input_table if query.has_udf else query.tables[0]
    remaining = list(query.joins)
    ordered = []
    covered = {root}
    while remaining:
        progressed = False
        for join in list(remaining):
            if join.left.table in covered or join.right.table in covered:
                ordered.append(join)
                remaining.remove(join)
                covered.add(join.left.table)
                covered.add(join.right.table)
                progressed = True
        if not progressed:
            raise PlanError(
                f"join graph of query {query.query_id} is disconnected: "
                f"covered={covered}, remaining={remaining}"
            )
    return ordered
