"""SQL substrate: expressions, plans, executor, cost model, planner."""

from repro.sql.costmodel import (
    COST_CONSTANTS,
    NOISE_SIGMA,
    STARTUP_COST,
    WorkCounters,
    simulated_runtime,
)
from repro.sql.executor import ExecutionResult, Executor
from repro.sql.expressions import ColumnRef, CompareOp, Conjunction, Predicate
from repro.sql.optimizer import build_plan
from repro.sql.plan import (
    AggFunc,
    Aggregate,
    Filter,
    HashJoin,
    PlanNode,
    Project,
    Scan,
    UDFAggregate,
    UDFFilter,
    UDFProject,
    find_nodes,
    format_plan,
    plan_depth,
    plan_tables,
)
from repro.sql.query import (
    AggSpec,
    FilterSpec,
    JoinSpec,
    Query,
    UDFPlacement,
    UDFRole,
    UDFSpec,
)
from repro.sql.relation import Relation
from repro.sql.render import query_to_sql
from repro.sql.joinorder import CoutCost, enumerate_join_orders, optimize_join_order

__all__ = [
    "AggFunc",
    "AggSpec",
    "Aggregate",
    "ColumnRef",
    "CompareOp",
    "Conjunction",
    "COST_CONSTANTS",
    "ExecutionResult",
    "Executor",
    "Filter",
    "FilterSpec",
    "HashJoin",
    "JoinSpec",
    "NOISE_SIGMA",
    "PlanNode",
    "Predicate",
    "Project",
    "Query",
    "Relation",
    "STARTUP_COST",
    "Scan",
    "UDFAggregate",
    "UDFFilter",
    "UDFPlacement",
    "UDFProject",
    "UDFRole",
    "UDFSpec",
    "WorkCounters",
    "build_plan",
    "find_nodes",
    "format_plan",
    "plan_depth",
    "plan_tables",
    "query_to_sql",
    "CoutCost",
    "enumerate_join_orders",
    "optimize_join_order",
    "simulated_runtime",
]
