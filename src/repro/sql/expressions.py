"""Scalar expression trees for filter predicates.

Expressions evaluate vectorized over a :class:`~repro.sql.relation.Relation`.
NULL semantics follow SQL: any comparison against NULL is false (we use
two-valued logic with NULL-rejecting comparisons, which matches how the
paper's conjunctive filter/branch queries behave).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import PlanError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sql.relation import Relation


class CompareOp(enum.Enum):
    """Comparison operators supported in filters and UDF branch conditions."""

    EQ = "="
    NEQ = "!="
    LT = "<"
    LEQ = "<="
    GT = ">"
    GEQ = ">="
    LIKE = "like"  # prefix match on strings

    def flip(self) -> "CompareOp":
        """The operator with operand sides swapped (a OP b == b OP.flip a)."""
        return {
            CompareOp.EQ: CompareOp.EQ,
            CompareOp.NEQ: CompareOp.NEQ,
            CompareOp.LT: CompareOp.GT,
            CompareOp.LEQ: CompareOp.GEQ,
            CompareOp.GT: CompareOp.LT,
            CompareOp.GEQ: CompareOp.LEQ,
            CompareOp.LIKE: CompareOp.LIKE,
        }[self]

    def negate(self) -> "CompareOp":
        """The logical negation (used for else-branch conditions)."""
        table = {
            CompareOp.EQ: CompareOp.NEQ,
            CompareOp.NEQ: CompareOp.EQ,
            CompareOp.LT: CompareOp.GEQ,
            CompareOp.LEQ: CompareOp.GT,
            CompareOp.GT: CompareOp.LEQ,
            CompareOp.GEQ: CompareOp.LT,
        }
        if self not in table:
            raise PlanError(f"cannot negate operator {self}")
        return table[self]


@dataclass(frozen=True)
class ColumnRef:
    """A reference to ``table.column``."""

    table: str
    column: str

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.column}"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.qualified


@dataclass(frozen=True)
class Predicate:
    """An atomic predicate ``column OP literal``."""

    column: ColumnRef
    op: CompareOp
    literal: object

    def evaluate(self, relation: "Relation") -> np.ndarray:
        """Vectorized evaluation; returns a boolean mask over the relation."""
        col = relation.column(self.column.qualified)
        mask = _compare(col.values, self.op, self.literal)
        return mask & col.valid

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.column} {self.op.value} {self.literal!r}"


@dataclass(frozen=True)
class Conjunction:
    """AND of atomic predicates (the only boolean combinator the paper's
    workload generator emits; OR can be added as a sibling class)."""

    predicates: tuple[Predicate, ...]

    def evaluate(self, relation: "Relation") -> np.ndarray:
        mask = np.ones(relation.num_rows, dtype=bool)
        for pred in self.predicates:
            mask &= pred.evaluate(relation)
        return mask

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return " AND ".join(str(p) for p in self.predicates)


def _compare(values: np.ndarray, op: CompareOp, literal: object) -> np.ndarray:
    if op is CompareOp.LIKE:
        prefix = str(literal)
        return np.array([isinstance(v, str) and v.startswith(prefix) for v in values])
    if values.dtype.kind == "O":  # string column
        if op is CompareOp.EQ:
            return np.array([v == literal for v in values])
        if op is CompareOp.NEQ:
            return np.array([v != literal for v in values])
        raise PlanError(f"operator {op.value!r} unsupported on string columns")
    ops = {
        CompareOp.EQ: np.equal,
        CompareOp.NEQ: np.not_equal,
        CompareOp.LT: np.less,
        CompareOp.LEQ: np.less_equal,
        CompareOp.GT: np.greater,
        CompareOp.GEQ: np.greater_equal,
    }
    return ops[op](values, literal)
