"""Intermediate query results: bags of qualified columns."""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.exceptions import PlanError
from repro.storage.column import Column
from repro.storage.table import Table


class Relation:
    """An intermediate result during query execution.

    Columns are keyed by their *qualified* name (``table.column``) so that
    joins never collide. A relation is immutable; every operator produces a
    new one (columns share the underlying numpy buffers where possible).
    """

    def __init__(self, columns: Mapping[str, Column]):
        self._columns: dict[str, Column] = dict(columns)
        lengths = {len(c) for c in self._columns.values()}
        if len(lengths) > 1:
            raise PlanError(f"relation columns disagree on length: {lengths}")
        self._num_rows = lengths.pop() if lengths else 0

    @classmethod
    def from_table(cls, table: Table) -> "Relation":
        return cls({f"{table.name}.{c.name}": c for c in table.columns})

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def __contains__(self, qualified_name: str) -> bool:
        return qualified_name in self._columns

    def column(self, qualified_name: str) -> Column:
        try:
            return self._columns[qualified_name]
        except KeyError:
            raise PlanError(
                f"relation has no column {qualified_name!r}; "
                f"available: {sorted(self._columns)}"
            ) from None

    def take(self, indices: np.ndarray) -> "Relation":
        return Relation({name: col.take(indices) for name, col in self._columns.items()})

    def filter(self, mask: np.ndarray) -> "Relation":
        return Relation({name: col.filter(mask) for name, col in self._columns.items()})

    def select(self, qualified_names: Iterable[str]) -> "Relation":
        return Relation({name: self.column(name) for name in qualified_names})

    def with_column(self, qualified_name: str, column: Column) -> "Relation":
        cols = dict(self._columns)
        cols[qualified_name] = column
        return Relation(cols)

    def merge(self, other: "Relation") -> "Relation":
        """Combine two row-aligned relations (used by join output assembly)."""
        if other.num_rows != self.num_rows and self._columns and other._columns:
            raise PlanError(
                f"cannot merge relations of {self.num_rows} and {other.num_rows} rows"
            )
        cols = dict(self._columns)
        for name, col in other._columns.items():
            if name in cols:
                raise PlanError(f"merge collision on column {name!r}")
            cols[name] = col
        return Relation(cols)

    def rows(self, qualified_names: list[str]) -> list[tuple]:
        """Materialize the given columns as Python-scalar row tuples.

        This is the row-at-a-time path scalar UDFs consume; NULLs become
        ``None`` exactly as a Python UDF in DuckDB would observe them.
        """
        cols = [self.column(name) for name in qualified_names]
        return [
            tuple(col.python_value(i) for col in cols) for i in range(self._num_rows)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation(rows={self._num_rows}, cols={sorted(self._columns)})"
