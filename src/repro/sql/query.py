"""Declarative query specification.

The workload generator (:mod:`repro.bench.workload`) produces
:class:`Query` objects; the planner (:mod:`repro.sql.optimizer`) lowers
them to executable plans with an explicit UDF *placement* — the degree of
freedom the pull-up advisor (§IV) decides on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sql.expressions import ColumnRef, CompareOp
from repro.sql.plan import AggFunc

if TYPE_CHECKING:  # pragma: no cover
    from repro.udf.udf import UDF


class UDFPlacement(enum.Enum):
    """Where the UDF filter sits in the plan (§IV / Table III columns)."""

    PUSH_DOWN = "push_down"  # directly above the scan of the input table
    INTERMEDIATE = "intermediate"  # after roughly half of the joins
    PULL_UP = "pull_up"  # at the very top, after all joins/filters


class UDFRole(enum.Enum):
    FILTER = "filter"
    PROJECTION = "projection"


@dataclass(frozen=True)
class FilterSpec:
    """A plain (non-UDF) filter predicate ``column OP literal``."""

    column: ColumnRef
    op: CompareOp
    literal: object


@dataclass(frozen=True)
class JoinSpec:
    """An equi-join edge between two tables of the query."""

    left: ColumnRef
    right: ColumnRef

    def involves(self, table: str) -> bool:
        return table in (self.left.table, self.right.table)


@dataclass
class UDFSpec:
    """The scalar UDF used by the query.

    ``input_columns`` live in ``input_table``; for the FILTER role the
    predicate is ``udf(cols...) OP literal``.
    """

    udf: "UDF"
    input_table: str
    input_columns: tuple[str, ...]
    role: UDFRole = UDFRole.FILTER
    op: CompareOp = CompareOp.LEQ
    literal: float = 0.0

    def column_refs(self) -> tuple[ColumnRef, ...]:
        return tuple(ColumnRef(self.input_table, c) for c in self.input_columns)


@dataclass(frozen=True)
class AggSpec:
    func: AggFunc = AggFunc.COUNT
    column: ColumnRef | None = None


@dataclass
class Query:
    """A SPJA query with (optionally) one scalar UDF.

    This mirrors the paper's benchmark queries: 1-5 joins, up to ~21
    filters, and a UDF in a filter predicate or in the projection.
    """

    dataset: str
    tables: tuple[str, ...]
    joins: tuple[JoinSpec, ...] = ()
    filters: tuple[FilterSpec, ...] = ()
    udf: UDFSpec | None = None
    agg: AggSpec | None = field(default_factory=AggSpec)
    query_id: int = 0

    @property
    def has_udf(self) -> bool:
        return self.udf is not None

    @property
    def num_joins(self) -> int:
        return len(self.joins)

    def filters_for(self, table: str) -> list[FilterSpec]:
        return [f for f in self.filters if f.column.table == table]

    def validate(self) -> None:
        """Sanity-check internal consistency (raises ``ValueError``)."""
        tables = set(self.tables)
        for join in self.joins:
            if join.left.table not in tables or join.right.table not in tables:
                raise ValueError(f"join {join} references a table outside {tables}")
        for flt in self.filters:
            if flt.column.table not in tables:
                raise ValueError(f"filter {flt} references a table outside {tables}")
        if self.udf is not None and self.udf.input_table not in tables:
            raise ValueError(f"UDF input table {self.udf.input_table!r} not in {tables}")
        if len(self.joins) != len(self.tables) - 1:
            raise ValueError(
                f"query over {len(self.tables)} tables needs {len(self.tables) - 1} "
                f"joins, got {len(self.joins)}"
            )
