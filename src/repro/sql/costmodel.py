"""Calibrated deterministic cost model (the wall-clock substitute).

The paper measures real runtimes on DuckDB (142 hours of executions). In
this reproduction the executor counts work — rows moved per operator and
per-operation UDF traces — and this module converts those counters into
seconds using calibrated constants, plus reproducible log-normal noise so
that the learning problem retains measurement jitter.

Constants were calibrated so the motivating example of the paper (Fig. 1)
reproduces: an expensive UDF applied to ~4.5M rows costs ~20s while the
same UDF applied to ~69k rows costs well under a second (see
``benchmarks/test_fig1_motivating.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Seconds per unit of work, by counter key.
COST_CONSTANTS: dict[str, float] = {
    # Query operators (per input row).
    "scan_row": 25e-9,
    "filter_row": 15e-9,
    "join_build_row": 120e-9,
    "join_probe_row": 60e-9,
    "agg_row": 40e-9,
    "project_row": 5e-9,
    # UDF work (per traced operation).
    "udf_invocation": 1.2e-6,
    # Row materialization at the UDF boundary: scalar UDF execution breaks
    # the vectorized pipeline and converts rows to Python objects; that
    # cost scales with the *width of the relation at the UDF's position*
    # (rows x columns). This is what makes UDF cost context-dependent —
    # a pulled-up UDF processes wider, joined rows.
    "udf_materialize_cell": 180e-9,
    "udf_arith": 60e-9,
    "udf_string": 300e-9,
    "udf_math_call": 400e-9,
    "udf_numpy_call": 2.5e-6,
    "udf_branch": 40e-9,
    "udf_loop_iter": 80e-9,
    "udf_return": 50e-9,
}

#: Fixed per-query startup cost (parse/plan/dispatch), seconds.
STARTUP_COST: float = 1e-3

#: Relative noise applied to simulated runtimes (log-normal sigma).
NOISE_SIGMA: float = 0.05


@dataclass
class WorkCounters:
    """Accumulated work of one query execution."""

    counts: dict[str, float] = field(default_factory=dict)

    def add(self, key: str, amount: float) -> None:
        if key not in COST_CONSTANTS:
            raise KeyError(f"unknown work counter {key!r}")
        self.counts[key] = self.counts.get(key, 0.0) + amount

    def merge(self, other: "WorkCounters") -> None:
        for key, amount in other.counts.items():
            self.counts[key] = self.counts.get(key, 0.0) + amount

    def get(self, key: str) -> float:
        return self.counts.get(key, 0.0)

    def total_seconds(self) -> float:
        """Noise-free cost in seconds."""
        return STARTUP_COST + sum(
            COST_CONSTANTS[key] * amount for key, amount in self.counts.items()
        )


def simulated_runtime(counters: WorkCounters, noise_seed: int | None = None) -> float:
    """Convert work counters to a runtime in seconds.

    When ``noise_seed`` is given, a reproducible log-normal factor
    (sigma=:data:`NOISE_SIGMA`) is applied — the stand-in for real
    measurement jitter.
    """
    runtime = counters.total_seconds()
    if noise_seed is not None:
        rng = np.random.default_rng(noise_seed)
        runtime *= float(rng.lognormal(mean=0.0, sigma=NOISE_SIGMA))
    return runtime
