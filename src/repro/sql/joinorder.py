"""Cost-based join-order enumeration (extension beyond the paper).

The paper's conclusion calls for "cost-based optimizations for UDFs that
go beyond pull-up/push-down decisions". This module provides the classic
half of that: dynamic-programming join-order enumeration (DPsize) over a
query's join graph, with pluggable plan costing:

* :class:`CoutCost` — the textbook C_out metric (sum of intermediate
  cardinality estimates), driven by any :mod:`repro.stats` estimator;
* a learned-cost adapter lives in :mod:`repro.advisor.planner`, which
  scores candidate plans with the trained GNN.

Only the join tree is enumerated; UDF placement stays the advisor's job,
so the two optimizations compose.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Protocol

from repro.exceptions import PlanError
from repro.sql.expressions import Conjunction, Predicate
from repro.sql.plan import Aggregate, Filter, HashJoin, PlanNode, Scan
from repro.sql.query import Query
from repro.stats.annotate import annotate_plan
from repro.stats.base import CardinalityEstimator


class PlanCost(Protocol):
    """Scores a full plan; lower is better."""

    def __call__(self, plan: PlanNode) -> float: ...  # pragma: no cover


@dataclass
class CoutCost:
    """C_out: sum of estimated intermediate result sizes [5]."""

    estimator: CardinalityEstimator

    def __call__(self, plan: PlanNode) -> float:
        annotate_plan(plan, self.estimator)
        return sum(
            node.est_card or 0.0
            for node in plan.walk()
            if isinstance(node, (HashJoin, Filter, Scan))
        )


def _scan_with_filters(query: Query, table: str) -> PlanNode:
    node: PlanNode = Scan(table=table)
    filters = query.filters_for(table)
    if filters:
        node = Filter(
            child=node,
            predicate=Conjunction(
                tuple(Predicate(f.column, f.op, f.literal) for f in filters)
            ),
        )
    return node


def _connecting_join(query: Query, left_tables: frozenset, right_tables: frozenset):
    for join in query.joins:
        lt, rt = join.left.table, join.right.table
        if lt in left_tables and rt in right_tables:
            return join.left, join.right
        if rt in left_tables and lt in right_tables:
            return join.right, join.left
    return None


def enumerate_join_orders(
    query: Query, max_plans: int | None = None
) -> list[PlanNode]:
    """All bushy join trees over the query's join graph (DPsize-style).

    For the paper's workloads (<= 6 tables) exhaustive enumeration is
    cheap; ``max_plans`` caps the output for larger queries.
    """
    tables = list(query.tables)
    if len(tables) == 1:
        return [_scan_with_filters(query, tables[0])]

    # plans[S] = list of plan trees covering exactly the table set S.
    plans: dict[frozenset, list[PlanNode]] = {
        frozenset({t}): [_scan_with_filters(query, t)] for t in tables
    }
    full = frozenset(tables)
    for size in range(2, len(tables) + 1):
        for subset in itertools.combinations(tables, size):
            subset_key = frozenset(subset)
            candidates: list[PlanNode] = []
            for split_size in range(1, size):
                for left_tables in itertools.combinations(subset, split_size):
                    left_key = frozenset(left_tables)
                    right_key = subset_key - left_key
                    if left_key not in plans or right_key not in plans:
                        continue
                    connection = _connecting_join(query, left_key, right_key)
                    if connection is None:
                        continue
                    left_ref, right_ref = connection
                    for lp in plans[left_key]:
                        for rp in plans[right_key]:
                            candidates.append(
                                HashJoin(
                                    left=lp.copy_tree(),
                                    right=rp.copy_tree(),
                                    left_key=left_ref,
                                    right_key=right_ref,
                                )
                            )
                            if max_plans and len(candidates) >= max_plans:
                                break
                        if max_plans and len(candidates) >= max_plans:
                            break
            if candidates:
                plans[subset_key] = candidates
    if full not in plans:
        raise PlanError(f"join graph of query {query.query_id} is disconnected")
    result = plans[full]
    if max_plans:
        result = result[:max_plans]
    return result


def _finish_plan(query: Query, join_tree: PlanNode) -> PlanNode:
    if query.agg is not None:
        return Aggregate(child=join_tree, func=query.agg.func, column=query.agg.column)
    return join_tree


def optimize_join_order(
    query: Query,
    cost: PlanCost,
    max_plans: int | None = 256,
) -> tuple[PlanNode, float]:
    """Pick the cheapest join order under ``cost``.

    Returns the complete plan (with aggregation) and its cost. The query
    must not contain a UDF filter — combine with the pull-up advisor for
    UDF queries (see :mod:`repro.advisor.planner`).
    """
    best_plan: PlanNode | None = None
    best_cost = float("inf")
    for join_tree in enumerate_join_orders(query, max_plans=max_plans):
        plan_cost = cost(join_tree)
        if plan_cost < best_cost:
            best_cost = plan_cost
            best_plan = join_tree
    if best_plan is None:
        raise PlanError("no valid join order found")
    return _finish_plan(query, best_plan), best_cost
