"""Statistics substrate: histograms, catalogs, cardinality estimators."""

from repro.stats.actual import ActualCardinalityEstimator
from repro.stats.annotate import annotate_plan
from repro.stats.base import (
    CardinalityEstimator,
    FragmentJoin,
    FragmentPredicate,
    QueryFragment,
)
from repro.stats.catalog import StatisticsCatalog
from repro.stats.deepdb import DeepDBEstimator
from repro.stats.fragments import fragment_to_plan
from repro.stats.histogram import ColumnStats, build_table_stats
from repro.stats.naive import NaiveEstimator
from repro.stats.wanderjoin import WanderJoinEstimator

#: Estimator registry keyed by the names used in the paper's tables.
ESTIMATOR_CLASSES = {
    "actual": ActualCardinalityEstimator,
    "deepdb": DeepDBEstimator,
    "wanderjoin": WanderJoinEstimator,
    "duckdb": NaiveEstimator,
}


def make_estimator(name: str, database) -> CardinalityEstimator:
    """Instantiate an estimator by its paper name."""
    try:
        cls = ESTIMATOR_CLASSES[name]
    except KeyError:
        raise KeyError(
            f"unknown estimator {name!r}; choose from {sorted(ESTIMATOR_CLASSES)}"
        ) from None
    return cls(database)


__all__ = [
    "ActualCardinalityEstimator",
    "CardinalityEstimator",
    "ColumnStats",
    "DeepDBEstimator",
    "ESTIMATOR_CLASSES",
    "FragmentJoin",
    "FragmentPredicate",
    "NaiveEstimator",
    "QueryFragment",
    "StatisticsCatalog",
    "WanderJoinEstimator",
    "annotate_plan",
    "build_table_stats",
    "fragment_to_plan",
    "make_estimator",
]
