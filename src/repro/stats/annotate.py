"""Plan annotation: write ``est_card`` onto every plan node.

Walks a plan bottom-up, building the :class:`QueryFragment` each node
computes, and queries a cardinality estimator for it. Above a UDF filter
no fragment describes the output (the UDF is opaque to the estimator), so
estimates are carried forward as ``fragment_estimate × selectivity
multiplier`` where the multiplier is the UDF filter's
``assumed_selectivity`` (1.0 — the paper's "fixed upper bound" — when no
assumption is made). This is exactly the cardinality-adjustment step of
the advisor (Fig. 4: ``card = card * sel`` above the UDF filter).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import PlanError
from repro.sql.plan import (
    Aggregate,
    Filter,
    HashJoin,
    PlanNode,
    Project,
    Scan,
    UDFAggregate,
    UDFFilter,
    UDFProject,
)
from repro.stats.base import (
    CardinalityEstimator,
    FragmentJoin,
    FragmentPredicate,
    QueryFragment,
)


@dataclass
class _State:
    """Fragment + UDF multiplier describing one subtree's output."""

    fragment: QueryFragment
    multiplier: float


def annotate_plan(
    root: PlanNode, estimator: CardinalityEstimator
) -> dict[int, _State]:
    """Annotate ``est_card`` on every node of ``root`` in place.

    Returns a mapping ``node_id -> _State`` so callers (the hit-ratio
    estimator, the joint-graph builder) can reuse the fragment that
    describes each node's input.
    """
    record: dict[int, _State] = {}
    _annotate(root, estimator, record)
    return record


def _annotate(
    node: PlanNode,
    estimator: CardinalityEstimator,
    record: dict[int, _State],
) -> _State:
    if isinstance(node, Scan):
        state = _State(QueryFragment.normalized((node.table,)), 1.0)
    elif isinstance(node, Filter):
        child = _annotate(node.child, estimator, record)
        if node.on_udf:
            # A plain filter over a UDF output column: opaque, keep fragment.
            state = child
        else:
            preds = tuple(
                FragmentPredicate(p.column, p.op, p.literal)
                for p in node.predicate.predicates
            )
            state = _State(child.fragment.with_predicates(preds), child.multiplier)
    elif isinstance(node, HashJoin):
        left = _annotate(node.left, estimator, record)
        right = _annotate(node.right, estimator, record)
        fragment = QueryFragment.normalized(
            left.fragment.tables + right.fragment.tables,
            left.fragment.joins
            + right.fragment.joins
            + (FragmentJoin(node.left_key, node.right_key),),
            left.fragment.predicates + right.fragment.predicates,
        )
        state = _State(fragment, left.multiplier * right.multiplier)
    elif isinstance(node, UDFFilter):
        child = _annotate(node.child, estimator, record)
        if node.assumed_selectivity is not None:
            # Advisor mode (§IV): iterate over assumed selectivities.
            selectivity = node.assumed_selectivity
        elif node.true_card is not None and (node.child.true_card or 0) > 0:
            # Executed benchmark plan: the observed UDF selectivity is part
            # of the ground truth (how Table III annotates plans).
            selectivity = node.true_card / node.child.true_card
        else:
            # Unexecuted, no assumption: the paper's fixed upper bound.
            selectivity = 1.0
        state = _State(child.fragment, child.multiplier * selectivity)
    elif isinstance(node, UDFAggregate):
        child = _annotate(node.child, estimator, record)
        node.est_card = 1.0
        record[node.node_id] = child
        return child
    elif isinstance(node, (UDFProject, Project)):
        state = _annotate(node.children[0], estimator, record)
    elif isinstance(node, Aggregate):
        child = _annotate(node.child, estimator, record)
        node.est_card = 1.0 if node.group_by is None else max(
            1.0, estimator.estimate(child.fragment) * child.multiplier
        )
        record[node.node_id] = child
        return child
    else:
        raise PlanError(f"cannot annotate node {type(node).__name__}")

    node.est_card = max(1.0, estimator.estimate(state.fragment) * state.multiplier)
    record[node.node_id] = state
    return state
