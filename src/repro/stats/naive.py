"""Textbook heuristic estimator (the "DuckDB" rows of Table III).

DBMS built-in estimators rely on independence assumptions, magic
selectivity constants for range predicates, and ``|L|·|R| / max(d_L, d_R)``
for equi-joins. On skewed, correlated data these go wrong by orders of
magnitude — the paper reports a median q-error of 6.29 and a 95th
percentile of 528 for DuckDB's estimates. This estimator reproduces that
profile honestly: it really estimates from distinct counts, it just uses
the classic assumptions.
"""

from __future__ import annotations

from repro.sql.expressions import CompareOp
from repro.stats.base import CardinalityEstimator, QueryFragment
from repro.stats.catalog import StatisticsCatalog
from repro.storage.database import Database

#: Magic constants, following System-R tradition (and close to what
#: DuckDB/Postgres use when no histogram is applicable).
RANGE_SELECTIVITY = 1.0 / 3.0
NEQ_SELECTIVITY = 0.9
LIKE_SELECTIVITY = 0.1


class NaiveEstimator(CardinalityEstimator):
    name = "duckdb"

    def __init__(self, database: Database, catalog: StatisticsCatalog | None = None):
        super().__init__(database)
        self.catalog = catalog or StatisticsCatalog(database)

    def _estimate(self, fragment: QueryFragment) -> float:
        # Per-table filtered sizes under predicate independence.
        sizes: dict[str, float] = {}
        for table in fragment.tables:
            size = float(self.catalog.n_rows(table))
            for pred in fragment.predicates:
                if pred.column.table != table:
                    continue
                size *= self._predicate_selectivity(pred)
            sizes[table] = size

        card = sizes[fragment.tables[0]]
        covered = {fragment.tables[0]}
        remaining = list(fragment.joins)
        while remaining:
            progressed = False
            for join in list(remaining):
                lt, rt = join.left.table, join.right.table
                if lt in covered and rt in covered:
                    remaining.remove(join)
                    progressed = True
                    continue
                if lt in covered or rt in covered:
                    new_table = rt if lt in covered else lt
                    d_left = self._distinct(join.left.table, join.left.column)
                    d_right = self._distinct(join.right.table, join.right.column)
                    card = card * sizes[new_table] / max(d_left, d_right, 1.0)
                    covered.add(new_table)
                    remaining.remove(join)
                    progressed = True
            if not progressed:
                break
        return max(card, 1.0)

    def _distinct(self, table: str, column: str) -> float:
        return float(self.catalog.column_stats(table, column).n_distinct)

    def _predicate_selectivity(self, pred) -> float:
        stats = self.catalog.column_stats(pred.column.table, pred.column.column)
        if pred.op is CompareOp.EQ:
            return 1.0 / max(1.0, float(stats.n_distinct))
        if pred.op is CompareOp.NEQ:
            return NEQ_SELECTIVITY
        if pred.op is CompareOp.LIKE:
            return LIKE_SELECTIVITY
        return RANGE_SELECTIVITY
