"""Per-database statistics catalog shared by all estimators."""

from __future__ import annotations

import numpy as np

from repro.stats.histogram import ColumnStats, build_table_stats
from repro.storage.database import Database
from repro.storage.generator import hash_name
from repro.storage.table import Table


class StatisticsCatalog:
    """Histograms, distinct counts, and uniform samples for one database.

    Built lazily per table so estimators only pay for what they touch.
    """

    def __init__(self, database: Database, sample_target: int = 2_000, seed: int = 7):
        self.database = database
        self.sample_target = sample_target
        self._seed = seed
        self._stats: dict[str, dict[str, ColumnStats]] = {}
        self._samples: dict[str, tuple[Table, float]] = {}

    def column_stats(self, table: str, column: str) -> ColumnStats:
        return self.table_stats(table)[column]

    def table_stats(self, table: str) -> dict[str, ColumnStats]:
        if table not in self._stats:
            self._stats[table] = build_table_stats(self.database.table(table))
        return self._stats[table]

    def sample(self, table: str) -> tuple[Table, float]:
        """A uniform sample of ``table`` and its sampling fraction.

        Tables at or below the target size are returned exactly
        (fraction 1.0), so estimates on small dimension tables are exact.
        """
        if table not in self._samples:
            full = self.database.table(table)
            n = len(full)
            if n <= self.sample_target:
                self._samples[table] = (full, 1.0)
            else:
                rng = np.random.default_rng(self._seed + hash_name(table) % 65_536)
                indices = np.sort(
                    rng.choice(n, size=self.sample_target, replace=False)
                )
                self._samples[table] = (full.take(indices), self.sample_target / n)
        return self._samples[table]

    def n_rows(self, table: str) -> int:
        return len(self.database.table(table))
