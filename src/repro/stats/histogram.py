"""Per-column statistics: equi-depth histograms, MCVs, distinct counts."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sql.expressions import CompareOp
from repro.storage.column import Column
from repro.storage.datatypes import DataType


@dataclass
class ColumnStats:
    """Statistics of a single column, built once per database.

    Numeric columns get an equi-depth histogram; string columns get a
    most-common-values list. ``selectivity`` answers atomic predicates the
    way a textbook optimizer would.
    """

    dtype: DataType
    n_rows: int
    n_nulls: int
    n_distinct: int
    # Numeric-only:
    bin_edges: np.ndarray | None = None
    bin_counts: np.ndarray | None = None
    min_value: float | None = None
    max_value: float | None = None
    #: low-cardinality numeric columns store exact per-value counts:
    #: bin_edges then holds the distinct values and bin_counts their
    #: frequencies, so range/point selectivities are exact instead of
    #: interpolated (point masses break within-bin uniformity badly)
    exact_values: bool = False
    # String-only: value -> frequency (over non-null rows)
    mcv: dict[str, float] = field(default_factory=dict)

    @property
    def null_fraction(self) -> float:
        return self.n_nulls / self.n_rows if self.n_rows else 0.0

    @property
    def non_null_fraction(self) -> float:
        return 1.0 - self.null_fraction

    @classmethod
    def from_column(cls, column: Column, n_bins: int = 64) -> "ColumnStats":
        values = column.non_null_values()
        n_rows = len(column)
        n_nulls = column.null_count
        if column.dtype is DataType.STRING:
            strings = values.astype(str)
            uniques, counts = (
                np.unique(strings, return_counts=True) if len(strings) else ([], [])
            )
            total = max(1, len(strings))
            mcv = {str(u): float(c) / total for u, c in zip(uniques, counts)}
            return cls(
                dtype=column.dtype,
                n_rows=n_rows,
                n_nulls=n_nulls,
                n_distinct=len(mcv),
                mcv=mcv,
            )
        numeric = values.astype(np.float64)
        if len(numeric) == 0:
            return cls(dtype=column.dtype, n_rows=n_rows, n_nulls=n_nulls, n_distinct=0)
        uniques, unique_counts = np.unique(numeric, return_counts=True)
        if len(uniques) <= n_bins:
            return cls(
                dtype=column.dtype,
                n_rows=n_rows,
                n_nulls=n_nulls,
                n_distinct=int(len(uniques)),
                bin_edges=uniques,
                bin_counts=unique_counts.astype(np.float64),
                min_value=float(numeric.min()),
                max_value=float(numeric.max()),
                exact_values=True,
            )
        quantiles = np.linspace(0.0, 1.0, n_bins + 1)
        edges = np.quantile(numeric, quantiles)
        edges = np.unique(edges)  # collapse duplicate edges on skewed data
        if len(edges) < 2:
            edges = np.array([edges[0], edges[0]])
            counts = np.array([len(numeric)], dtype=np.float64)
        else:
            counts, _ = np.histogram(numeric, bins=edges)
            counts = counts.astype(np.float64)
        return cls(
            dtype=column.dtype,
            n_rows=n_rows,
            n_nulls=n_nulls,
            n_distinct=int(len(uniques)),
            bin_edges=edges,
            bin_counts=counts,
            min_value=float(numeric.min()),
            max_value=float(numeric.max()),
        )

    # ------------------------------------------------------------------
    def selectivity(self, op: CompareOp, literal: object) -> float:
        """Estimated fraction of *all* rows satisfying ``col OP literal``.

        NULL rows never satisfy a predicate, so estimates are scaled by the
        non-null fraction.
        """
        if self.n_rows == 0:
            return 0.0
        if self.dtype is DataType.STRING:
            base = self._string_selectivity(op, str(literal))
        else:
            base = self._numeric_selectivity(op, float(literal))
        return float(np.clip(base * self.non_null_fraction, 0.0, 1.0))

    def _string_selectivity(self, op: CompareOp, literal: str) -> float:
        freq = self.mcv.get(literal, 0.0)
        if op is CompareOp.EQ:
            return freq
        if op is CompareOp.NEQ:
            return 1.0 - freq
        if op is CompareOp.LIKE:
            return sum(f for v, f in self.mcv.items() if v.startswith(literal))
        return 0.0

    def _numeric_selectivity(self, op: CompareOp, literal: float) -> float:
        if self.bin_edges is None or self.bin_counts is None:
            return 0.0
        if self.exact_values:
            total = self.bin_counts.sum()
            if total == 0:
                return 0.0
            below = float(self.bin_counts[self.bin_edges < literal].sum()) / total
            at = float(self.bin_counts[self.bin_edges == literal].sum()) / total
            if op is CompareOp.LT:
                return below
            if op is CompareOp.LEQ:
                return below + at
            if op is CompareOp.GT:
                return 1.0 - below - at
            if op is CompareOp.GEQ:
                return 1.0 - below
            if op is CompareOp.EQ:
                return at
            if op is CompareOp.NEQ:
                return 1.0 - at
            return 0.0
        frac_below = self._fraction_below(literal)
        eq_frac = 1.0 / max(1, self.n_distinct)
        if op is CompareOp.LT:
            return frac_below
        if op is CompareOp.LEQ:
            return min(1.0, frac_below + eq_frac)
        if op is CompareOp.GT:
            return max(0.0, 1.0 - frac_below - eq_frac)
        if op is CompareOp.GEQ:
            return 1.0 - frac_below
        if op is CompareOp.EQ:
            return self._point_fraction(literal)
        if op is CompareOp.NEQ:
            return 1.0 - self._point_fraction(literal)
        return 0.0

    def _fraction_below(self, literal: float) -> float:
        """Fraction of non-null values strictly below ``literal``."""
        edges, counts = self.bin_edges, self.bin_counts
        total = counts.sum()
        if total == 0:
            return 0.0
        if literal <= edges[0]:
            return 0.0
        if literal > edges[-1]:
            return 1.0
        if literal == edges[-1]:
            # "strictly below the max" must exclude the point mass at the
            # max itself (matters for heavily duplicated columns).
            return 1.0 - self._point_fraction(literal)
        acc = 0.0
        for i in range(len(counts)):
            lo, hi = edges[i], edges[i + 1]
            if literal >= hi:
                acc += counts[i]
            elif literal > lo:
                acc += counts[i] * (literal - lo) / max(hi - lo, 1e-12)
                break
            else:
                break
        return float(acc / total)

    def _point_fraction(self, literal: float) -> float:
        """Fraction of non-null values equal to ``literal``."""
        edges, counts = self.bin_edges, self.bin_counts
        total = counts.sum()
        if total == 0 or literal < edges[0] or literal > edges[-1]:
            return 0.0
        idx = int(np.searchsorted(edges, literal, side="right")) - 1
        idx = min(max(idx, 0), len(counts) - 1)
        bin_fraction = counts[idx] / total
        # Assume uniformity inside the bin across the column's distincts.
        distinct_per_bin = max(1.0, self.n_distinct / max(1, len(counts)))
        return float(bin_fraction / distinct_per_bin)


def build_table_stats(table, n_bins: int = 64) -> dict[str, ColumnStats]:
    """Column statistics for every column of a table."""
    return {c.name: ColumnStats.from_column(c, n_bins) for c in table.columns}
