"""Execute query fragments as plans (shared by the actual & sample estimators)."""

from __future__ import annotations

from repro.exceptions import EstimationError
from repro.sql.expressions import Conjunction, Predicate
from repro.sql.plan import Filter, HashJoin, PlanNode, Scan
from repro.stats.base import QueryFragment


def fragment_to_plan(fragment: QueryFragment) -> PlanNode:
    """Lower a fragment to a filter/join plan (BFS join order)."""

    def scan_with_filters(table: str) -> PlanNode:
        node: PlanNode = Scan(table=table)
        preds = [p for p in fragment.predicates if p.column.table == table]
        if preds:
            node = Filter(
                child=node,
                predicate=Conjunction(
                    tuple(Predicate(p.column, p.op, p.literal) for p in preds)
                ),
            )
        return node

    root_table = fragment.tables[0]
    node = scan_with_filters(root_table)
    covered = {root_table}
    remaining = list(fragment.joins)
    while remaining:
        progressed = False
        for join in list(remaining):
            lt, rt = join.left.table, join.right.table
            if lt in covered and rt in covered:
                remaining.remove(join)  # cycle edge; drop (shouldn't happen)
                progressed = True
                continue
            if lt in covered or rt in covered:
                left_key, right_key = (join.left, join.right) if lt in covered else (
                    join.right,
                    join.left,
                )
                other = rt if lt in covered else lt
                node = HashJoin(
                    left=node,
                    right=scan_with_filters(other),
                    left_key=left_key,
                    right_key=right_key,
                )
                covered.add(other)
                remaining.remove(join)
                progressed = True
        if not progressed:
            raise EstimationError(
                f"fragment join graph disconnected: covered={covered}, "
                f"remaining={remaining}"
            )
    return node
