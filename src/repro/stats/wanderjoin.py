"""WanderJoin-like estimator: random walks over join paths.

WanderJoin [27] estimates join sizes by sampling random walks through the
join graph, weighting each completed walk by the inverse of its sampling
probability. It is unbiased but high-variance on selective fragments —
the paper reports a median q-error of 1.21 with a 95th percentile of 309.

This implementation follows the original algorithm: the walk starts at a
uniformly random tuple of the first table and extends along each join
edge by picking a uniformly random *matching* tuple (via a hash index);
predicates are checked on the visited tuples. The paper's configuration
of 100 successful walks is the default.
"""

from __future__ import annotations

import numpy as np

from repro.stats.base import CardinalityEstimator, FragmentPredicate, QueryFragment
from repro.storage.database import Database


class WanderJoinEstimator(CardinalityEstimator):
    name = "wanderjoin"

    def __init__(self, database: Database, n_walks: int = 100, seed: int = 1234,
                 max_attempts_factor: int = 10):
        super().__init__(database)
        self.n_walks = n_walks
        self.max_attempts_factor = max_attempts_factor
        self._rng = np.random.default_rng(seed)
        # (table, column) -> {value: np.ndarray of row indices}
        self._indexes: dict[tuple[str, str], dict[object, np.ndarray]] = {}

    # ------------------------------------------------------------------
    def _index(self, table: str, column: str) -> dict[object, np.ndarray]:
        key = (table, column)
        if key not in self._indexes:
            col = self.database.table(table).column(column)
            buckets: dict[object, list[int]] = {}
            for i in range(len(col)):
                if col.valid[i]:
                    buckets.setdefault(col.values[i], []).append(i)
            self._indexes[key] = {
                value: np.asarray(rows, dtype=np.int64)
                for value, rows in buckets.items()
            }
        return self._indexes[key]

    def _row_passes(self, table: str, row: int,
                    predicates: tuple[FragmentPredicate, ...]) -> bool:
        tbl = self.database.table(table)
        for pred in predicates:
            if pred.column.table != table:
                continue
            col = tbl.column(pred.column.column)
            if not col.valid[row]:
                return False
            from repro.sql.expressions import _compare

            value = np.asarray([col.values[row]])
            if not bool(_compare(value, pred.op, pred.literal)[0]):
                return False
        return True

    # ------------------------------------------------------------------
    def _estimate(self, fragment: QueryFragment) -> float:
        root = fragment.tables[0]
        n_root = len(self.database.table(root))
        if n_root == 0:
            return 0.0

        # Order the walk: BFS over join edges from the root table.
        path: list[tuple[str, str, str, str]] = []  # (from_t, from_c, to_t, to_c)
        covered = {root}
        remaining = list(fragment.joins)
        while remaining:
            progressed = False
            for join in list(remaining):
                lt, rt = join.left.table, join.right.table
                if lt in covered and rt in covered:
                    remaining.remove(join)
                    progressed = True
                elif lt in covered:
                    path.append((lt, join.left.column, rt, join.right.column))
                    covered.add(rt)
                    remaining.remove(join)
                    progressed = True
                elif rt in covered:
                    path.append((rt, join.right.column, lt, join.left.column))
                    covered.add(lt)
                    remaining.remove(join)
                    progressed = True
            if not progressed:
                break

        estimates: list[float] = []
        attempts = 0
        max_attempts = self.n_walks * self.max_attempts_factor
        while len(estimates) < self.n_walks and attempts < max_attempts:
            attempts += 1
            estimates.append(self._walk(root, n_root, path, fragment.predicates))
        if not estimates:
            return 0.0
        return float(np.mean(estimates))

    def _walk(self, root: str, n_root: int,
              path: list[tuple[str, str, str, str]],
              predicates: tuple[FragmentPredicate, ...]) -> float:
        """One random walk; returns its Horvitz-Thompson weight (0 = failed)."""
        current_rows: dict[str, int] = {}
        row = int(self._rng.integers(0, n_root))
        if not self._row_passes(root, row, predicates):
            return 0.0
        current_rows[root] = row
        weight = float(n_root)
        for from_t, from_c, to_t, to_c in path:
            from_tbl = self.database.table(from_t)
            col = from_tbl.column(from_c)
            from_row = current_rows[from_t]
            if not col.valid[from_row]:
                return 0.0
            matches = self._index(to_t, to_c).get(col.values[from_row])
            if matches is None or len(matches) == 0:
                return 0.0
            pick = int(matches[int(self._rng.integers(0, len(matches)))])
            if not self._row_passes(to_t, pick, predicates):
                return 0.0
            current_rows[to_t] = pick
            weight *= float(len(matches))
        return weight
