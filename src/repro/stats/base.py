"""Cardinality-estimator interface and the query-fragment abstraction.

A *fragment* is the estimation unit everywhere in the system: a set of
tables, the equi-join edges connecting them, and a conjunction of atomic
predicates. Plan annotation walks a plan bottom-up building fragments; the
hit-ratio estimator (§III-B) builds fragments whose predicates include UDF
branch conditions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.sql.expressions import ColumnRef, CompareOp
from repro.storage.database import Database


@dataclass(frozen=True)
class FragmentPredicate:
    """Atomic predicate inside a fragment (hashable)."""

    column: ColumnRef
    op: CompareOp
    literal: object


@dataclass(frozen=True)
class FragmentJoin:
    """Equi-join edge inside a fragment (hashable)."""

    left: ColumnRef
    right: ColumnRef


@dataclass(frozen=True)
class QueryFragment:
    """A conjunctive select-project-join fragment over base tables."""

    tables: tuple[str, ...]
    joins: tuple[FragmentJoin, ...] = ()
    predicates: tuple[FragmentPredicate, ...] = ()

    @staticmethod
    def normalized(
        tables: tuple[str, ...],
        joins: tuple[FragmentJoin, ...] = (),
        predicates: tuple[FragmentPredicate, ...] = (),
    ) -> "QueryFragment":
        """Canonical ordering so equal fragments hash equally."""
        return QueryFragment(
            tables=tuple(sorted(tables)),
            joins=tuple(
                sorted(joins, key=lambda j: (j.left.qualified, j.right.qualified))
            ),
            predicates=tuple(
                sorted(
                    predicates,
                    key=lambda p: (p.column.qualified, p.op.value, repr(p.literal)),
                )
            ),
        )

    def with_predicates(self, extra: tuple[FragmentPredicate, ...]) -> "QueryFragment":
        return QueryFragment.normalized(self.tables, self.joins, self.predicates + extra)


class CardinalityEstimator(abc.ABC):
    """Estimates output cardinalities of query fragments.

    Subclasses implement ``_estimate``; this base class provides caching
    (fragments repeat heavily: every plan node and every hit-ratio query).
    """

    #: short name used in experiment tables ("actual", "deepdb", ...)
    name: str = "base"

    def __init__(self, database: Database):
        self.database = database
        self._cache: dict[QueryFragment, float] = {}

    def estimate(self, fragment: QueryFragment) -> float:
        fragment = QueryFragment.normalized(
            fragment.tables, fragment.joins, fragment.predicates
        )
        if fragment not in self._cache:
            self._cache[fragment] = max(0.0, float(self._estimate(fragment)))
        return self._cache[fragment]

    def estimate_scan(self, table: str) -> float:
        return self.estimate(QueryFragment.normalized((table,)))

    @abc.abstractmethod
    def _estimate(self, fragment: QueryFragment) -> float:
        """Produce the raw estimate (subclass responsibility)."""

    def clear_cache(self) -> None:
        self._cache.clear()
