"""The perfect-information estimator: executes the fragment and counts."""

from __future__ import annotations

from repro.exec.simulator import SimulatorBackend
from repro.stats.base import CardinalityEstimator, QueryFragment
from repro.stats.fragments import fragment_to_plan
from repro.storage.database import Database


class ActualCardinalityEstimator(CardinalityEstimator):
    """Executes fragments against the database — the paper's "Actual" rows.

    This is the upper baseline of Table III and the oracle used to isolate
    model error from estimation error (Exp 2/4). Fragments run on the
    simulator backend regardless of where benchmark queries execute:
    ground-truth counting needs per-node cardinalities, not wall-clock.
    """

    name = "actual"

    def __init__(self, database: Database):
        super().__init__(database)
        self._backend = SimulatorBackend(database)

    def _estimate(self, fragment: QueryFragment) -> float:
        plan = fragment_to_plan(fragment)
        result = self._backend.execute(plan)
        return float(result.relation.num_rows)
