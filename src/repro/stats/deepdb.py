"""DeepDB-like data-driven estimator (sampling stand-in).

DeepDB [26] learns relational sum-product networks over the data and is
the most accurate learned estimator in the paper (median q-error ~1.02-1.3,
with tails on correlated/skewed datasets). We reproduce that profile with
*correlated uniform sampling*: fragments are executed exactly on per-table
uniform samples and scaled by the inverse sampling fractions.

* small dimension tables are kept whole → near-exact single-table and
  dim-only estimates (like DeepDB);
* sampled fact tables introduce variance that grows on skewed fan-outs —
  exactly the datasets (airline/baseball) where the paper reports DeepDB
  struggling;
* empty sample results fall back to a fractional pseudo-count, producing
  the occasional large q-error the paper's 95th/99th percentiles show.
"""

from __future__ import annotations

from repro.exec.simulator import SimulatorBackend
from repro.stats.base import CardinalityEstimator, QueryFragment
from repro.stats.catalog import StatisticsCatalog
from repro.stats.fragments import fragment_to_plan
from repro.storage.database import Database


class DeepDBEstimator(CardinalityEstimator):
    name = "deepdb"

    def __init__(self, database: Database, catalog: StatisticsCatalog | None = None):
        super().__init__(database)
        self.catalog = catalog or StatisticsCatalog(database)
        self._sampled_db: Database | None = None
        self._scale: dict[str, float] = {}

    def _ensure_sampled(self) -> Database:
        if self._sampled_db is None:
            tables = []
            for name in self.database.table_names:
                sample, fraction = self.catalog.sample(name)
                tables.append(sample)
                self._scale[name] = fraction
            self._sampled_db = Database(
                self.database.name, tables, self.database.foreign_keys
            )
        return self._sampled_db

    def _estimate(self, fragment: QueryFragment) -> float:
        sampled = self._ensure_sampled()
        plan = fragment_to_plan(fragment)
        count = float(SimulatorBackend(sampled).execute(plan).relation.num_rows)
        scale = 1.0
        for table in fragment.tables:
            scale /= self._scale[table]
        if count == 0.0:
            # Pseudo-count: half a sampled row, scaled up. Mirrors learned
            # estimators' behaviour of never answering exactly zero.
            count = 0.5
        return count * scale
