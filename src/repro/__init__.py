"""GRACEFUL reproduction: a learned GNN cost estimator for SQL queries
with UDFs (Wehrstein et al., ICDE 2025), built entirely from scratch.

Quickstart::

    from repro.bench import build_dataset_benchmark
    from repro.eval import prepare_dataset_samples
    from repro.model import GracefulModel

    bench = build_dataset_benchmark("imdb", n_queries=50)
    samples = prepare_dataset_samples(bench)
    model = GracefulModel().fit(samples)
    predictions = model.predict(samples)

See README.md for the architecture overview and DESIGN.md for the system
inventory and experiment index.
"""

__version__ = "1.0.0"

from repro.exceptions import (
    CFGError,
    EstimationError,
    ExecutionError,
    ModelError,
    PlanError,
    ReproError,
    SchemaError,
    UDFError,
)

__all__ = [
    "CFGError",
    "EstimationError",
    "ExecutionError",
    "ModelError",
    "PlanError",
    "ReproError",
    "SchemaError",
    "UDFError",
    "__version__",
]
