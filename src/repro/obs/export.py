"""Scrape-time samples bridging component counters into ``/metrics``.

Components that already keep their own cheap counters — the per-shard
``EngineStats`` merged on read, the cache tiers, the circuit breaker,
``RouterStats``, the feedback log — are *sampled* when ``/metrics`` is
scraped rather than double-counted into the live registry.  One number,
one owner: the registry holds hot-path instruments (stage histograms,
HTTP request counters), this module converts everything else into
``(name, kind, help, labels, value)`` tuples that
:meth:`repro.obs.metrics.MetricsRegistry.render` appends verbatim.

Naming follows DESIGN.md §15: ``repro_<subsystem>_<noun>[_unit]`` with
a ``_total`` suffix on monotone counters.
"""

from __future__ import annotations

__all__ = [
    "breaker_samples",
    "cache_samples",
    "engine_samples",
    "feedback_samples",
    "health_samples",
    "router_samples",
    "sample",
    "serving_samples",
]

Sample = tuple

BREAKER_STATES = ("closed", "open", "half_open")
HEALTH_STATES = ("starting", "ready", "degraded", "draining")
_REQUEST_TIERS = ("payload", "prepared", "topology")
#: EngineStats keys that are levels, not monotone counts
_ENGINE_GAUGES = ("mean_batch_size", "max_batch_observed")
#: FeedbackLog.stats() keys that are monotone counts
_FEEDBACK_COUNTERS = (
    "appended",
    "write_errors",
    "dropped_pending",
    "quarantined_chunks",
    "poison_records",
)
_FEEDBACK_GAUGES = ("memory_records", "pending_records", "disk_chunks", "disk_bytes")


def sample(name, value, labels=None, kind="gauge", help_text="") -> Sample:
    """One pre-aggregated exposition sample."""
    return (name, kind, help_text, dict(labels or {}), float(value))


def cache_samples(request_stats=None, prediction_stats=None, labels=None):
    """Per-tier hit/miss/invalidate samples from the cache ``stats()`` docs."""
    labels = dict(labels or {})
    out: list[Sample] = []
    if request_stats:
        for tier in _REQUEST_TIERS:
            for event in ("hits", "misses"):
                key = f"{tier}_{event}"
                if key in request_stats:
                    out.append(
                        sample(
                            "repro_cache_events_total",
                            request_stats[key],
                            {
                                **labels,
                                "cache": "request",
                                "tier": tier,
                                "event": event,
                            },
                            "counter",
                            "Cache lookups by cache, tier, and outcome",
                        )
                    )
            entries_key = f"{tier}_entries"
            if entries_key in request_stats:
                out.append(
                    sample(
                        "repro_cache_entries",
                        request_stats[entries_key],
                        {**labels, "cache": "request", "tier": tier},
                        "gauge",
                        "Live cache entries by cache and tier",
                    )
                )
    if prediction_stats:
        plabels = {**labels, "cache": "prediction", "tier": "prediction"}
        for event in ("hits", "misses"):
            if event in prediction_stats:
                out.append(
                    sample(
                        "repro_cache_events_total",
                        prediction_stats[event],
                        {**plabels, "event": event},
                        "counter",
                    )
                )
        if "entries" in prediction_stats:
            out.append(
                sample("repro_cache_entries", prediction_stats["entries"], plabels)
            )
        for key in ("invalidations", "rejected_puts"):
            if key in prediction_stats:
                out.append(
                    sample(
                        f"repro_cache_{key}_total",
                        prediction_stats[key],
                        {**labels, "cache": "prediction"},
                        "counter",
                    )
                )
        if "hit_rate" in prediction_stats:
            out.append(
                sample(
                    "repro_cache_hit_rate",
                    prediction_stats["hit_rate"],
                    {**labels, "cache": "prediction"},
                )
            )
    return out


def breaker_samples(doc, labels=None):
    """One-hot state gauge + trip/probe counters from ``describe()``."""
    labels = dict(labels or {})
    state = doc.get("state", "closed")
    out = [
        sample(
            "repro_breaker_state",
            1.0 if state == known else 0.0,
            {**labels, "state": known},
            "gauge",
            "Circuit breaker state (one-hot)",
        )
        for known in BREAKER_STATES
    ]
    out.append(
        sample(
            "repro_breaker_trips_total",
            doc.get("trips", 0),
            labels,
            "counter",
            "Times the breaker opened",
        )
    )
    out.append(
        sample(
            "repro_breaker_probes_total",
            doc.get("probes", 0),
            labels,
            "counter",
            "Half-open probe requests admitted",
        )
    )
    out.append(sample("repro_breaker_window", doc.get("window", 0), labels))
    out.append(
        sample("repro_breaker_window_failures", doc.get("window_failures", 0), labels)
    )
    return out


def engine_samples(doc, labels=None):
    """Samples from a (Sharded/MicroBatch) engine ``describe()`` doc."""
    labels = dict(labels or {})
    out: list[Sample] = []
    stats = doc.get("stats") or {}
    for key, value in stats.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if key == "busy_seconds":
            out.append(
                sample(
                    "repro_engine_busy_seconds_total",
                    value,
                    labels,
                    "counter",
                    "Seconds shard threads spent in joint forwards",
                )
            )
        elif key in _ENGINE_GAUGES:
            out.append(sample(f"repro_engine_{key}", value, labels))
        else:
            out.append(sample(f"repro_engine_{key}_total", value, labels, "counter"))
    if "queued" in doc:
        out.append(
            sample(
                "repro_engine_queue_depth",
                doc["queued"],
                labels,
                "gauge",
                "Requests waiting in shard queues",
            )
        )
    if "shards" in doc:
        out.append(sample("repro_engine_shards", doc["shards"], labels))
    if "restarts" in doc:
        out.append(
            sample("repro_engine_restarts_total", doc["restarts"], labels, "counter")
        )
    if "model_version" in doc:
        out.append(sample("repro_engine_model_version", doc["model_version"], labels))
    out.extend(
        cache_samples(doc.get("request_cache"), doc.get("prediction_cache"), labels)
    )
    if doc.get("breaker"):
        out.extend(breaker_samples(doc["breaker"], labels))
    if doc.get("fallback"):
        fallback = doc["fallback"]
        out.append(
            sample(
                "repro_fallback_served_total",
                fallback.get("served", 0),
                labels,
                "counter",
                "Degraded-tier answers served",
            )
        )
        out.append(
            sample(
                "repro_fallback_observations", fallback.get("observations", 0), labels
            )
        )
    return out


def health_samples(health):
    """One-hot health state + restart counter from a HealthMonitor."""
    state = health.state()
    out = [
        sample(
            "repro_health_state",
            1.0 if state == known else 0.0,
            {"state": known},
            "gauge",
            "Service health state (one-hot)",
        )
        for known in HEALTH_STATES
    ]
    out.append(
        sample("repro_health_restarts_total", health.restarts, None, "counter")
    )
    return out


def feedback_samples(stats, labels=None):
    """Counters/gauges from a FeedbackLog ``stats()`` doc."""
    labels = dict(labels or {})
    out: list[Sample] = []
    for key in _FEEDBACK_COUNTERS:
        if key in stats:
            out.append(
                sample(f"repro_feedback_{key}_total", stats[key], labels, "counter")
            )
    for key in _FEEDBACK_GAUGES:
        if key in stats:
            out.append(sample(f"repro_feedback_{key}", stats[key], labels))
    return out


def _sum_numeric(into: dict, src: dict | None) -> None:
    for key, value in (src or {}).items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        into[key] = into.get(key, 0) + value


def router_samples(router, include_workers: bool = True):
    """Routing counters, per-worker depths, and aggregated worker engines.

    ``include_workers=True`` asks every live worker for its engine
    snapshot (one ``stats`` frame each, 5s timeout) and sums the
    counters under ``scope="workers"`` — that is what surfaces the
    worker-side cache tiers and breaker through the async front end's
    ``/metrics``.  Ratio-like keys (hit_rate, mean_batch_size, epoch)
    are dropped from the sums: a sum of ratios is not a ratio.
    """
    doc = router.describe(include_workers=include_workers)
    stats = doc.get("stats") or {}
    out = [
        sample(
            "repro_router_decisions_total",
            stats.get("affinity", 0),
            {"decision": "affinity"},
            "counter",
            "Per-request routing decisions (owner affinity vs spill)",
        ),
        sample(
            "repro_router_decisions_total",
            stats.get("spills", 0),
            {"decision": "spill"},
            "counter",
        ),
    ]
    for key in ("dispatched", "retries", "respawns", "unknown_resends", "promotions"):
        out.append(
            sample(f"repro_router_{key}_total", stats.get(key, 0), None, "counter")
        )
    out.append(sample("repro_router_workers", doc.get("workers", 0)))
    out.append(sample("repro_router_workers_alive", doc.get("alive", 0)))
    out.append(sample("repro_router_epoch", doc.get("epoch", 0)))
    out.append(
        sample(
            "repro_router_outstanding",
            doc.get("outstanding", 0),
            None,
            "gauge",
            "In-flight requests across all workers",
        )
    )
    for worker in doc.get("per_worker", ()):
        wlabels = {"worker": str(worker.get("worker_id"))}
        out.append(
            sample(
                "repro_router_worker_outstanding",
                worker.get("outstanding", 0),
                wlabels,
                "gauge",
                "In-flight requests per worker",
            )
        )
        out.append(
            sample(
                "repro_router_worker_alive",
                1.0 if worker.get("alive") else 0.0,
                wlabels,
            )
        )
        out.append(
            sample(
                "repro_router_worker_known_fps", worker.get("known_fps", 0), wlabels
            )
        )
    # the payload tier lives in the router process (fp_cache)
    fp_cache = getattr(router, "fp_cache", None)
    if fp_cache is not None:
        out.extend(cache_samples(fp_cache.stats(), None, {"scope": "frontend"}))
    deep = doc.get("worker_stats") or []
    if deep:
        stats_sum: dict = {}
        request_sum: dict = {}
        prediction_sum: dict = {}
        breaker_trips = 0
        breaker_probes = 0
        breaker_open = 0
        queued = 0
        restarts = 0
        for worker_doc in deep:
            engine = worker_doc.get("engine") or {}
            _sum_numeric(stats_sum, engine.get("stats"))
            _sum_numeric(request_sum, engine.get("request_cache"))
            _sum_numeric(prediction_sum, engine.get("prediction_cache"))
            queued += engine.get("queued", 0)
            restarts += engine.get("restarts", 0)
            breaker = engine.get("breaker") or {}
            breaker_trips += breaker.get("trips", 0)
            breaker_probes += breaker.get("probes", 0)
            if breaker.get("state") not in (None, "closed"):
                breaker_open += 1
        for ratio_key in ("mean_batch_size", "hit_rate", "epoch", "max_entries"):
            stats_sum.pop(ratio_key, None)
            request_sum.pop(ratio_key, None)
            prediction_sum.pop(ratio_key, None)
        request_sum.pop("max_graphs", None)
        aggregated = {
            "stats": stats_sum,
            "queued": queued,
            "restarts": restarts,
            "request_cache": request_sum,
            "prediction_cache": prediction_sum,
        }
        out.extend(engine_samples(aggregated, {"scope": "workers"}))
        wlabels = {"scope": "workers"}
        out.append(
            sample("repro_breaker_trips_total", breaker_trips, wlabels, "counter")
        )
        out.append(
            sample("repro_breaker_probes_total", breaker_probes, wlabels, "counter")
        )
        out.append(
            sample(
                "repro_breaker_open_workers",
                breaker_open,
                None,
                "gauge",
                "Workers whose breaker is not closed",
            )
        )
    return out


def serving_samples(engine=None, health=None, feedback=None):
    """The single-process front end's scrape set."""
    out: list[Sample] = []
    if engine is not None:
        out.extend(engine_samples(engine.describe()))
    if health is not None:
        out.extend(health_samples(health))
    if feedback is not None:
        out.extend(feedback_samples(feedback.stats()))
    return out
