"""Observability for the serving stack (DESIGN.md §15).

Stdlib-only by design: :mod:`repro.obs` sits *below* ``repro.serve``
and ``repro.feedback`` in the import graph so any layer — the engine's
shard threads, the worker processes, the feedback flusher — can
instrument itself without creating an import cycle.

* :mod:`repro.obs.clock` — the one duration clock (``time.monotonic``);
* :mod:`repro.obs.metrics` — counters/gauges/histograms with per-thread
  shards, Prometheus-text exposition, the ``REPRO_OBS`` on/off gate;
* :mod:`repro.obs.tracing` — trace/span ids, the per-stage span
  taxonomy, cross-process propagation, the ``REPRO_SLOW_MS`` slow log;
* :mod:`repro.obs.export` — scrape-time samples from components that
  keep their own counters (engine stats, caches, breaker, router).
"""

from __future__ import annotations

from repro.obs import clock, export, metrics, tracing
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    REGISTRY,
    MetricsRegistry,
    counter,
    enabled,
    gauge,
    histogram,
    log_buckets,
    render,
    set_enabled,
)
from repro.obs.tracing import (
    Span,
    Trace,
    current,
    maybe_log_slow,
    maybe_trace,
    observe_stage,
    recent_traces,
    span,
    trace_request,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "Trace",
    "clock",
    "counter",
    "current",
    "enabled",
    "export",
    "gauge",
    "histogram",
    "log_buckets",
    "maybe_log_slow",
    "maybe_trace",
    "metrics",
    "observe_stage",
    "recent_traces",
    "render",
    "set_enabled",
    "span",
    "trace_request",
    "tracing",
]
