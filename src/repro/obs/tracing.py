"""Cross-process request tracing and per-stage latency attribution.

A :class:`Trace` is one request's collection of timed spans.  The span
taxonomy (DESIGN.md §15) names where a request can spend time:

=====================  =============================================
stage                  measured where
=====================  =============================================
``http.decode``        front end — JSON parse + graph reconstruction
``queue.wait``         front end executor hop / engine shard queue
``cache.lookup``       engine — fingerprints + prediction-cache probe
``router.dispatch``    router — fingerprint, route, send frames
``wire.roundtrip``     router — dispatch done → every reply gathered
``frame.decode``       either side — unpickling one wire frame
``engine.wait``        engine caller — submit → futures resolved
``model.forward``      engine shard thread — one joint forward pass
``worker.engine``      worker process — whole engine call (remote)
``degraded.fallback``  engine — breaker-open / failure fallback fill
``feedback.flush``     feedback log — one chunk written to disk
=====================  =============================================

Spans recorded on the request's own thread are **top-level**: they tile
the request's wall clock, so their sum approximates the end-to-end
latency (the acceptance gate holds them within 10%).  Spans reported
from other threads or processes (a worker's engine breakdown riding
back on the wire frame) are recorded **nested** — attribution detail
inside some top-level span, excluded from the tiling sum.

Every span also feeds the ``repro_stage_seconds{stage=...}`` histogram,
so aggregate attribution exists even for untraced traffic; traces add
the per-request view.  Propagation: ``X-Request-Id``/``X-Trace-Id``
HTTP headers in and out of both front ends, and an optional ``trace``
field in the router→worker pickle frames (absent when untraced, so old
workers and new routers interoperate either way).

The slow-request log: with ``REPRO_SLOW_MS`` set, every front-end
request is traced and any request slower than the threshold emits one
JSON line on the ``repro.obs.slow`` logger with its span breakdown.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import logging
import os
import uuid
from collections import deque

from repro.obs import clock, metrics

__all__ = [
    "Span",
    "Trace",
    "activate",
    "clear_recent",
    "current",
    "finish",
    "from_wire",
    "maybe_log_slow",
    "maybe_trace",
    "new_request_id",
    "new_span_id",
    "new_trace_id",
    "observe_stage",
    "pop",
    "push",
    "recent_traces",
    "sample_every",
    "slow_threshold_s",
    "span",
    "to_wire",
    "trace_request",
]

_SLOW_LOGGER = logging.getLogger("repro.obs.slow")

STAGE_SECONDS = metrics.histogram(
    "repro_stage_seconds",
    "Per-stage latency attribution (span taxonomy, DESIGN.md §15)",
    labelnames=("stage",),
)


def new_trace_id() -> str:
    return uuid.uuid4().hex


def new_request_id() -> str:
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One timed stage inside a trace."""

    __slots__ = ("span_id", "name", "seconds", "nested")

    def __init__(self, name: str, seconds: float, nested: bool = False):
        self.span_id = new_span_id()
        self.name = name
        self.seconds = seconds
        self.nested = nested

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "nested" if self.nested else "span"
        return f"<{kind} {self.name} {self.seconds * 1000:.3f}ms>"


class Trace:
    """One request's spans, tags, and wall-clock window."""

    __slots__ = ("trace_id", "request_id", "spans", "tags", "started", "finished")

    def __init__(self, trace_id: str | None = None, request_id: str | None = None):
        self.trace_id = trace_id or new_trace_id()
        self.request_id = request_id or new_request_id()
        self.spans: list[Span] = []
        self.tags: dict[str, object] = {}
        self.started = clock.monotonic()
        self.finished: float | None = None

    def record(self, name: str, seconds: float, nested: bool = False) -> None:
        self.spans.append(Span(name, seconds, nested))

    def tag(self, key: str, value) -> None:
        self.tags[key] = value

    def total_seconds(self) -> float:
        end = self.finished if self.finished is not None else clock.monotonic()
        return end - self.started

    def top_level_seconds(self) -> float:
        """Sum of spans measured on the request's own thread."""
        return sum(s.seconds for s in self.spans if not s.nested)

    def breakdown(self) -> dict[str, float]:
        """Per-stage summed seconds, nested spans included."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.name] = out.get(s.name, 0.0) + s.seconds
        return out

    def to_dict(self) -> dict:
        doc = {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "total_ms": round(self.total_seconds() * 1000.0, 3),
            "stages_ms": {
                name: round(seconds * 1000.0, 3)
                for name, seconds in sorted(self.breakdown().items())
            },
        }
        if self.tags:
            doc["tags"] = dict(self.tags)
        return doc


_CURRENT: contextvars.ContextVar[Trace | None] = contextvars.ContextVar(
    "repro_obs_trace", default=None
)
#: recently finished traces, oldest first — the loadtest sampler and
#: tests read these; bounded so an armed sampler can't grow memory
_RECENT: deque[Trace] = deque(maxlen=64)


def current() -> Trace | None:
    return _CURRENT.get()


def finish(trace: Trace) -> Trace:
    trace.finished = clock.monotonic()
    _RECENT.append(trace)
    return trace


def recent_traces(n: int = 16) -> list[Trace]:
    return list(_RECENT)[-n:]


def clear_recent() -> None:
    _RECENT.clear()


@contextlib.contextmanager
def activate(trace: Trace | None):
    """Make ``trace`` current for the block without finishing it.

    The executor-hop helper: ``contextvars`` do not propagate through
    ``loop.run_in_executor``, so the async front end creates the trace
    on the event loop and re-activates it inside the worker thread.
    ``activate(None)`` is a no-op so call sites stay unconditional.
    """
    if trace is None:
        yield None
        return
    token = _CURRENT.set(trace)
    try:
        yield trace
    finally:
        _CURRENT.reset(token)


def push(trace: Trace | None):
    """Make ``trace`` current; returns a token for :func:`pop` (None-safe).

    The begin/finish counterpart to :func:`activate` for call sites that
    cannot wrap the request in a ``with`` block (the stdlib HTTP handler
    methods).  ``push(None)`` returns ``None`` and changes nothing.
    """
    if trace is None:
        return None
    return _CURRENT.set(trace)


def pop(token) -> None:
    """Undo a :func:`push` (no-op for a ``None`` token)."""
    if token is not None:
        _CURRENT.reset(token)


@contextlib.contextmanager
def trace_request(trace_id: str | None = None, request_id: str | None = None):
    """Run the block under a fresh trace, finished on exit.

    Yields ``None`` (and records nothing) when observability is off.
    """
    if not metrics.enabled():
        yield None
        return
    trace = Trace(trace_id, request_id)
    token = _CURRENT.set(trace)
    try:
        yield trace
    finally:
        _CURRENT.reset(token)
        finish(trace)


def observe_stage(name: str, seconds: float, nested: bool = False) -> None:
    """Record one stage duration: histogram always, current trace if any."""
    if not metrics.enabled():
        return
    STAGE_SECONDS.labels(name).observe(seconds)
    trace = _CURRENT.get()
    if trace is not None:
        trace.record(name, seconds, nested)


@contextlib.contextmanager
def span(name: str, nested: bool = False):
    """Time the block as one stage (no-op when observability is off)."""
    if not metrics.enabled():
        yield None
        return
    started = clock.monotonic()
    try:
        yield None
    finally:
        observe_stage(name, clock.monotonic() - started, nested)


# -- cross-process propagation -----------------------------------------


def to_wire(trace: Trace | None) -> dict[str, str] | None:
    """Trace context as a pickle-frame-friendly dict (None when untraced)."""
    if trace is None:
        return None
    return {"trace_id": trace.trace_id, "request_id": trace.request_id}


def from_wire(wire: dict | None) -> Trace | None:
    """Rehydrate a received trace context (None-safe)."""
    if not wire:
        return None
    return Trace(wire.get("trace_id"), wire.get("request_id"))


# -- sampling + slow-request log ---------------------------------------


def slow_threshold_s() -> float | None:
    """``REPRO_SLOW_MS`` as seconds, or None when the log is unarmed."""
    raw = os.environ.get("REPRO_SLOW_MS", "").strip()
    if not raw:
        return None
    try:
        ms = float(raw)
    except ValueError:
        return None
    return ms / 1000.0 if ms >= 0 else None


def sample_every() -> int:
    """``REPRO_TRACE_SAMPLE`` — trace every Nth request (0 = off)."""
    raw = os.environ.get("REPRO_TRACE_SAMPLE", "").strip()
    if not raw:
        return 0
    try:
        every = int(raw)
    except ValueError:
        return 0
    return every if every > 0 else 0


def maybe_trace(
    header_trace_id: str | None = None,
    request_id: str | None = None,
    seq: int = 0,
) -> Trace | None:
    """The front-end sampling decision for one request.

    Trace when the client sent an ``X-Trace-Id`` (their id is adopted so
    client and server logs join), when the slow-request log is armed
    (every request is a candidate offender), or when ``seq`` lands on
    the ``REPRO_TRACE_SAMPLE`` stride.
    """
    if not metrics.enabled():
        return None
    if header_trace_id:
        return Trace(header_trace_id, request_id)
    if slow_threshold_s() is not None:
        return Trace(None, request_id)
    every = sample_every()
    if every > 0 and seq % every == 0:
        return Trace(None, request_id)
    return None


def maybe_log_slow(
    trace: Trace | None,
    route: str = "",
    status: int = 0,
    logger: logging.Logger = _SLOW_LOGGER,
) -> str | None:
    """Emit one JSON line when the finished trace breaches the threshold.

    Returns the line (or None), so tests and callers can assert on it.
    """
    threshold = slow_threshold_s()
    if trace is None or threshold is None:
        return None
    total = trace.total_seconds()
    if total < threshold:
        return None
    doc = trace.to_dict()
    doc["event"] = "slow_request"
    doc["route"] = route
    doc["status"] = status
    doc["threshold_ms"] = round(threshold * 1000.0, 3)
    line = json.dumps(doc, sort_keys=True)
    logger.warning("%s", line)
    return line
