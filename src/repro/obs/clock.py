"""The one timing clock for the serving stack.

Before this seam existed the stack mixed two clocks:
``EngineStats.busy_seconds`` was measured with ``time.perf_counter``
while deadlines, breaker latency, and queue-wait arithmetic used
``time.monotonic``.  Both are monotonic, but their epochs differ and
CPython documents no relationship between them, so a delta computed
from one cannot be compared with a timestamp taken from the other.
One near-miss was enough: a span that starts on ``perf_counter`` can
never be checked against a ``deadline_from_ms`` budget.

The documented choice is ``time.monotonic``:

* deadlines are *absolute* monotonic timestamps
  (:func:`repro.serve.resilience.deadline_from_ms`), so any duration
  that might ever be compared against a deadline must come from the
  same clock;
* on Linux both clocks resolve to ``CLOCK_MONOTONIC`` granularity
  (~ns), so nothing is lost for the micro-batch timings this repo
  cares about.

Every duration in ``repro.serve``/``repro.obs`` — busy-seconds, span
timings, breaker probe latency, queue wait — reads this module's
:func:`monotonic` and nothing else.
"""

from __future__ import annotations

import time

__all__ = ["monotonic", "now"]

#: the process-wide duration clock (seconds, float)
monotonic = time.monotonic


def now() -> float:
    """Seconds on the process-wide monotonic clock."""
    return monotonic()
