"""Process-local metrics registry with Prometheus-text exposition.

Three instrument kinds, one registry, zero dependencies:

* **counter** — monotonically increasing float, ``inc(amount)``;
* **gauge** — last-write-wins float, ``set(value)`` / ``inc(amount)``;
* **histogram** — fixed log-spaced buckets with Prometheus ``le``
  semantics (a sample equal to a bound lands *in* that bucket),
  ``observe(value)``.

Hot-path discipline (the engine merges per-shard ``EngineStats`` on
read precisely to keep its dispatch path lock-free; instrumentation
must not regress that): counters and histograms keep **one shard per
writing thread**, created under a lock once and then mutated without
any locking — the owning thread is the only writer, readers sum the
shards at scrape time.  A read can therefore tear *between* shards
(miss an in-flight increment), which is exactly the accuracy contract
Prometheus scrapes already have.

Labels are frozen tuples: ``family.labels("predict", "200")`` interns
one child per label-value tuple and returns the same child object on
every call, so call sites can also cache the child themselves.

The whole subsystem sits behind one switch: ``REPRO_OBS=off`` (or
``0``/``false``/``no``) turns every mutation into an early return, and
:func:`set_enabled` flips the same switch at runtime so the overhead
benchmark can measure instrumented-vs-bare throughput in one process.

Exposition is Prometheus text format 0.0.4 via :meth:`render`; scrape
points may pass *extra* pre-aggregated samples (see
:mod:`repro.obs.export`) for components that keep their own counters.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "enabled",
    "gauge",
    "histogram",
    "log_buckets",
    "render",
    "set_enabled",
]

_DISABLED_VALUES = ("off", "0", "false", "no")


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "").strip().lower() not in _DISABLED_VALUES


class _State:
    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = _env_enabled()


_STATE = _State()


def enabled() -> bool:
    """True when instrumentation writes are live (the ``REPRO_OBS`` gate)."""
    return _STATE.enabled


def set_enabled(flag: bool) -> bool:
    """Flip the instrumentation gate at runtime; returns the previous value."""
    previous = _STATE.enabled
    _STATE.enabled = bool(flag)
    return previous


def log_buckets(lo: float, hi: float, per_decade: int = 4) -> tuple[float, ...]:
    """Log-spaced bucket bounds from ``lo`` up to the first bound >= ``hi``.

    ``per_decade`` steps per factor of ten; bounds are rounded to six
    significant digits so the exposition stays readable.
    """
    if lo <= 0 or hi <= lo or per_decade < 1:
        raise ValueError("log_buckets needs 0 < lo < hi and per_decade >= 1")
    bounds: list[float] = []
    step = 0
    while True:
        bound = float(f"{lo * 10 ** (step / per_decade):.6g}")
        bounds.append(bound)
        if bound >= hi:
            return tuple(bounds)
        step += 1


#: 1-2.5-5 ladder from 100µs to 10s — wide enough for a cache hit
#: (~µs) and a cold multi-process round trip (~s) on the same chart
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(f'{n}="{_escape(v)}"' for n, v in zip(names, values))
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _fmt_bound(bound: float) -> str:
    return f"{bound:.10g}"


class _CounterChild:
    """One label combination of a counter; per-thread shards, no lock."""

    __slots__ = ("_shards", "_lock")

    def __init__(self) -> None:
        self._shards: dict[int, list[float]] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if not _STATE.enabled:
            return
        ident = threading.get_ident()
        shard = self._shards.get(ident)
        if shard is None:
            shard = [0.0]
            with self._lock:
                shard = self._shards.setdefault(ident, shard)
        shard[0] += amount

    @property
    def value(self) -> float:
        return sum(shard[0] for shard in list(self._shards.values()))


class _GaugeChild:
    """Last-write-wins value; sets are rare enough to take a lock."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if not _STATE.enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _STATE.enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class _HistogramChild:
    """Fixed-bucket histogram; per-thread shards merged at scrape time.

    Shard layout: one slot per finite bound, one overflow (``+Inf``)
    slot, then the running sum and count — five float adds per observe,
    no lock after the shard exists.
    """

    __slots__ = ("_bounds", "_shards", "_lock")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._bounds = bounds
        self._shards: dict[int, list[float]] = {}
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        if not _STATE.enabled:
            return
        ident = threading.get_ident()
        shard = self._shards.get(ident)
        if shard is None:
            shard = [0.0] * (len(self._bounds) + 3)
            with self._lock:
                shard = self._shards.setdefault(ident, shard)
        # Prometheus ``le`` semantics: value == bound falls in that bucket
        shard[bisect_left(self._bounds, value)] += 1.0
        shard[-2] += value
        shard[-1] += 1.0

    def snapshot(self) -> tuple[list[float], float, float]:
        """(cumulative per-``le`` counts incl. ``+Inf``, sum, count)."""
        merged = [0.0] * (len(self._bounds) + 3)
        for shard in list(self._shards.values()):
            for i, slot in enumerate(shard):
                merged[i] += slot
        cumulative: list[float] = []
        acc = 0.0
        for count in merged[: len(self._bounds) + 1]:
            acc += count
            cumulative.append(acc)
        return cumulative, merged[-2], merged[-1]

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds


class _Family:
    """A named metric plus its per-label-tuple children."""

    kind = "untyped"
    _child_cls: type | None = None

    def __init__(self, name: str, help_text: str, labelnames: tuple[str, ...]):
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()
        if not labelnames:
            self.labels()  # label-less family: one default child

    def _make_child(self):
        return self._child_cls()

    def labels(self, *values):
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            if len(key) != len(self.labelnames):
                raise ValueError(
                    f"metric {self.name!r} takes labels {self.labelnames!r}, "
                    f"got {key!r}"
                )
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def _default(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} requires labels {self.labelnames!r}"
            )
        return self._children[()]

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        return sorted(self._children.items())

    def header_into(self, lines: list[str]) -> None:
        if self.help:
            lines.append(f"# HELP {self.name} {_escape(self.help)}")
        lines.append(f"# TYPE {self.name} {self.kind}")


class _CounterFamily(_Family):
    kind = "counter"
    _child_cls = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value

    def render_into(self, lines: list[str]) -> None:
        self.header_into(lines)
        for key, child in self.children():
            label_str = _label_str(self.labelnames, key)
            lines.append(f"{self.name}{label_str} {_fmt(child.value)}")


class _GaugeFamily(_Family):
    kind = "gauge"
    _child_cls = _GaugeChild

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value

    def render_into(self, lines: list[str]) -> None:
        self.header_into(lines)
        for key, child in self.children():
            label_str = _label_str(self.labelnames, key)
            lines.append(f"{self.name}{label_str} {_fmt(child.value)}")


class _HistogramFamily(_Family):
    kind = "histogram"

    def __init__(self, name, help_text, labelnames, buckets):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.buckets = bounds
        super().__init__(name, help_text, labelnames)

    def _make_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def snapshot(self):
        return self._default().snapshot()

    def render_into(self, lines: list[str]) -> None:
        self.header_into(lines)
        for key, child in self.children():
            cumulative, total, count = child.snapshot()
            for bound, cum in zip(self.buckets, cumulative):
                le = _label_str(
                    self.labelnames + ("le",), key + (_fmt_bound(bound),)
                )
                lines.append(f"{self.name}_bucket{le} {_fmt(cum)}")
            inf = _label_str(self.labelnames + ("le",), key + ("+Inf",))
            lines.append(f"{self.name}_bucket{inf} {_fmt(cumulative[-1])}")
            label_str = _label_str(self.labelnames, key)
            lines.append(f"{self.name}_sum{label_str} {_fmt(total)}")
            lines.append(f"{self.name}_count{label_str} {_fmt(count)}")


class MetricsRegistry:
    """Named families, get-or-create, consistency-checked."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _family(self, cls, name, help_text, labelnames, **kwargs) -> _Family:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = cls(name, help_text, tuple(labelnames), **kwargs)
                    self._families[name] = family
        if type(family) is not cls or family.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} "
                f"with labels {family.labelnames!r}"
            )
        return family

    def counter(self, name, help_text="", labelnames=()) -> _CounterFamily:
        return self._family(_CounterFamily, name, help_text, labelnames)

    def gauge(self, name, help_text="", labelnames=()) -> _GaugeFamily:
        return self._family(_GaugeFamily, name, help_text, labelnames)

    def histogram(
        self,
        name,
        help_text="",
        labelnames=(),
        buckets=DEFAULT_LATENCY_BUCKETS,
    ) -> _HistogramFamily:
        return self._family(
            _HistogramFamily, name, help_text, labelnames, buckets=buckets
        )

    def render(self, extra=()) -> str:
        """Prometheus text 0.0.4: registered families + ``extra`` samples.

        ``extra`` is an iterable of ``(name, kind, help, labels, value)``
        tuples (see :func:`repro.obs.export.sample`) for components that
        keep their own counters and are sampled at scrape time instead
        of double-counted into the registry.  Extra names must not
        collide with registered families.
        """
        lines: list[str] = []
        for name in sorted(self._families):
            self._families[name].render_into(lines)
        grouped: dict[str, tuple[str, str, list]] = {}
        for name, kind, help_text, labels, value in extra:
            bucket = grouped.setdefault(name, (kind, help_text, []))
            bucket[2].append((labels, value))
        for name, (kind, help_text, samples) in grouped.items():
            if help_text:
                lines.append(f"# HELP {name} {_escape(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, value in samples:
                items = tuple(labels.items())
                label_str = _label_str(
                    tuple(k for k, _ in items), tuple(str(v) for _, v in items)
                )
                lines.append(f"{name}{label_str} {_fmt(value)}")
        return "\n".join(lines) + "\n"


#: the process-wide registry every instrument in this repo lives in
REGISTRY = MetricsRegistry()


def counter(name, help_text="", labelnames=()) -> _CounterFamily:
    return REGISTRY.counter(name, help_text, labelnames)


def gauge(name, help_text="", labelnames=()) -> _GaugeFamily:
    return REGISTRY.gauge(name, help_text, labelnames)


def histogram(
    name, help_text="", labelnames=(), buckets=DEFAULT_LATENCY_BUCKETS
) -> _HistogramFamily:
    return REGISTRY.histogram(name, help_text, labelnames, buckets=buckets)


def render(extra=()) -> str:
    return REGISTRY.render(extra)
