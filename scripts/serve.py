#!/usr/bin/env python
"""Launch the cost-model advisor service over a synthetic benchmark.

Trains (or reuses from the registry) a CostGNN for the chosen dataset,
publishes it as a registry version, and serves predictions + placement
advice over HTTP::

    PYTHONPATH=src python scripts/serve.py --dataset movielens --port 8080

    curl localhost:8080/healthz
    curl localhost:8080/models
    curl -X POST localhost:8080/advise -d '{"query": {...}}'

With ``--workers N`` the service runs the multi-process tier instead
(DESIGN.md §14): N worker processes behind the fingerprint-affinity
router, fronted by the asyncio HTTP server (``/predict``, ``/healthz``,
``/stats`` — placement advice stays on the single-process path)::

    PYTHONPATH=src python scripts/serve.py --dataset movielens \
        --workers 4 --port 8080

See ``examples/serving_client.py`` for a full client round-trip.
"""

from __future__ import annotations

import argparse
import os
import signal

from repro.bench import build_dataset_benchmark
from repro.eval import prepare_dataset_samples, training_placements
from repro.model import GNNConfig, GracefulModel, TrainConfig
from repro.serve import (
    AdvisorService,
    CircuitBreaker,
    DegradedFallback,
    ModelRegistry,
    PredictionCache,
    PreparedRequestCache,
    ShardedEngine,
    WorkerRouter,
    make_async_server,
    make_server,
)
from repro.serve import faults
from repro.stats import StatisticsCatalog, make_estimator


def build_service(args: argparse.Namespace):
    """(server, registry, model_version) for the parsed CLI options."""
    injector = faults.install_from_env()
    if injector is not None:
        print(f"fault injection armed: {injector.spec!r} (seed={injector.seed})")
    registry = ModelRegistry(args.registry_dir)
    model_name = args.model or f"costgnn-{args.dataset}"

    print(f"building {args.dataset} benchmark ({args.queries} queries)...")
    bench = build_dataset_benchmark(
        args.dataset, n_queries=args.queries, seed=args.seed
    )

    versions = registry.versions(model_name)
    if versions and not args.retrain:
        # crash-safe startup: a corrupt sidecar or truncated archive is
        # quarantined and the next-best candidate serves instead
        model, version = registry.load_serving(model_name)
        if registry.quarantined:
            print(f"quarantined artifacts: {registry.quarantined}")
        print(f"serving registry model {version.ref} ({version.dtype})")
    else:
        print(f"training {model_name} (epochs={args.epochs})...")
        samples = prepare_dataset_samples(
            bench, estimator_name="actual", placements=training_placements()
        )
        graceful = GracefulModel(
            GNNConfig(hidden_dim=args.hidden_dim),
            TrainConfig(epochs=args.epochs),
        )
        graceful.fit(samples)
        model = graceful.model
        version = registry.publish(
            model_name,
            model,
            metrics={"n_training_samples": len(samples)},
            description=f"trained by scripts/serve.py on {args.dataset}",
        )
        print(f"published {version.ref}")

    engine = ShardedEngine(
        model,
        shards=args.shards or None,  # None -> $REPRO_SERVE_SHARDS / cores
        max_batch_size=args.max_batch_size,
        max_wait_us=args.max_wait_us,
        request_cache=PreparedRequestCache(),
        prediction_cache=PredictionCache(),
        max_queue=args.queue_cap or None,  # None -> $REPRO_QUEUE_CAP
        breaker=CircuitBreaker(),
        fallback=DegradedFallback(),
    )
    print(
        f"inference engine: {engine.n_shards} shard(s), fast-path caches on, "
        f"breaker + degraded fallback armed"
    )
    service = AdvisorService(
        engine,
        catalog=StatisticsCatalog(bench.database),
        estimator=make_estimator(args.estimator, bench.database),
        strategy=args.strategy,
    )
    server = make_server(
        service,
        registry=registry,
        host=args.host,
        port=args.port,
        model_ref=version.ref,
    )
    return server, registry, version


def build_multiproc_service(args: argparse.Namespace):
    """(async server, router, version) for ``--workers N`` serving.

    The model travels through the registry — published here if needed,
    loaded by every worker process from the shared root — which is also
    what makes later canary promotions reach all workers.
    """
    injector = faults.install_from_env()
    if injector is not None:
        print(f"fault injection armed: {injector.spec!r} (seed={injector.seed})")
    registry = ModelRegistry(args.registry_dir)
    model_name = args.model or f"costgnn-{args.dataset}"
    versions = registry.versions(model_name)
    if not versions or args.retrain:
        print(f"building {args.dataset} benchmark ({args.queries} queries)...")
        bench = build_dataset_benchmark(
            args.dataset, n_queries=args.queries, seed=args.seed
        )
        print(f"training {model_name} (epochs={args.epochs})...")
        samples = prepare_dataset_samples(
            bench, estimator_name="actual", placements=training_placements()
        )
        graceful = GracefulModel(
            GNNConfig(hidden_dim=args.hidden_dim),
            TrainConfig(epochs=args.epochs),
        )
        graceful.fit(samples)
        version = registry.publish(
            model_name,
            graceful.model,
            metrics={"n_training_samples": len(samples)},
            description=f"trained by scripts/serve.py on {args.dataset}",
        )
        print(f"published {version.ref}")
    else:
        version = registry.latest(model_name)
        print(f"serving registry model {version.ref} ({version.dtype})")
    router = WorkerRouter(
        registry.root,
        model_name,
        model_version=version.version,
        workers=args.workers,
        shards_per_worker=max(1, args.shards),
        max_batch_size=args.max_batch_size,
        max_wait_us=args.max_wait_us,
        max_queue=args.queue_cap or None,
    )
    print(f"worker router: {args.workers} process(es), affinity routing on")
    server = make_async_server(
        router, host=args.host, port=args.port, model_ref=version.ref
    )
    return server, router, version


def _raise_keyboard_interrupt(signum, frame):
    """SIGTERM → the same clean-drain path as ctrl-c."""
    raise KeyboardInterrupt


def serve_until_signalled(server) -> None:
    """Serve until SIGTERM/SIGINT, then drain the engine cleanly.

    Container and CI deployments stop services with SIGTERM; without a
    handler the process would die mid-batch, dropping queued futures.
    The handler converts SIGTERM into the KeyboardInterrupt path so both
    signals shut down identically: stop accepting requests, then drain
    the micro-batch engine. (Runs on the main thread — signal handlers
    cannot be installed anywhere else.)
    """
    previous = signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.drain()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="movielens")
    parser.add_argument("--queries", type=int, default=60)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--hidden-dim", type=int, default=24)
    parser.add_argument("--epochs", type=int, default=60)
    parser.add_argument("--model", default="", help="registry model name")
    parser.add_argument("--registry-dir", default=None)
    parser.add_argument(
        "--retrain", action="store_true", help="train even if a version exists"
    )
    parser.add_argument("--max-batch-size", type=int, default=64)
    parser.add_argument("--max-wait-us", type=float, default=2000.0)
    parser.add_argument(
        "--queue-cap",
        type=int,
        default=0,
        help="per-shard admission bound (0 = $REPRO_QUEUE_CAP or 8192); "
        "submissions past it are shed with HTTP 503 + Retry-After",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=0.0,
        help="default per-request budget in ms (0 = $REPRO_DEADLINE_MS or "
        "none); clients override per call with an X-Deadline-Ms header",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        default=-1.0,
        help="arm the slow-request log: requests slower than this emit "
        "one JSON line with their span breakdown (negative = "
        "$REPRO_SLOW_MS or off)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="inference worker threads (0 = $REPRO_SERVE_SHARDS or one "
        "per core, capped at 4)",
    )
    parser.add_argument("--strategy", default="conservative")
    parser.add_argument("--estimator", default="actual")
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the multi-process tier (0 = classic "
        "single-process service with placement advice)",
    )
    args = parser.parse_args(argv)

    if args.deadline_ms > 0:
        # the HTTP layer reads the env per request, so the flag is just
        # a spelling of the env knob that wins over an inherited value
        os.environ["REPRO_DEADLINE_MS"] = str(args.deadline_ms)
    if args.slow_ms >= 0:
        # same pattern: tracing reads the env per request
        os.environ["REPRO_SLOW_MS"] = str(args.slow_ms)
    if args.workers > 0:
        server, router, version = build_multiproc_service(args)
        server.serve_in_background()
        print(f"serving {version.ref} at {server.url} (SIGTERM/ctrl-c to stop)")
        print(f"metrics at {server.url}/metrics, stats at {server.url}/stats")
        previous = signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
        try:
            while True:
                signal.pause()
        except KeyboardInterrupt:
            pass
        finally:
            signal.signal(signal.SIGTERM, previous)
            server.drain()
            hung = router.close()
            if hung:
                print(f"warning: {hung} worker(s) needed a hard kill")
        return
    server, _, version = build_service(args)
    print(f"serving {version.ref} at {server.url} (SIGTERM/ctrl-c to stop)")
    print(f"metrics at {server.url}/metrics, stats at {server.url}/stats")
    serve_until_signalled(server)


if __name__ == "__main__":
    main()
