#!/usr/bin/env python
"""Ground the loop on real hardware: simulator vs. DuckDB (DESIGN.md §13).

Generates a TPC-DS-flavored star database, builds a >=200-query UDF
workload on the simulator backend, re-executes every placement plan on
DuckDB with registered Python UDFs, and quantifies how honest the
simulator is:

* per-query Spearman rank correlation of simulated vs. real runtimes
  (overall and per UDF placement),
* advisor-win sign agreement (does pull-up beat push-down on both
  engines for the same query?),
* COUNT(*) parity — both engines must return identical result counts,
  pinning the SQL rendering round-trip.

Real wall-clock runtimes then flow into the closed loop: a quick cost
model serves placement decisions and ``observe_benchmark`` records the
*measured DuckDB runtime* of each chosen placement into the
``FeedbackLog``, tagged ``backend=duckdb``. The report lands in
``BENCH_duckdb.json``::

    pip install -e ".[duckdb]"
    PYTHONPATH=src python scripts/realbench.py --queries 200

Requires the ``duckdb`` extra; exits with a pointed message otherwise.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass, field

import numpy as np
from scipy import stats as scipy_stats

from repro.bench import WorkloadConfig, build_benchmark_for_database
from repro.bench.builder import prepare_full_database
from repro.eval import prepare_dataset_samples, training_placements
from repro.exec import (
    DuckDBBackend,
    StarSchemaConfig,
    backend_available,
    generate_star_database,
)
from repro.feedback import FeedbackLog, observe_benchmark
from repro.model import GNNConfig, GracefulModel, PreparedGraphCache, TrainConfig
from repro.serve import AdvisorService, MicroBatchEngine
from repro.sql.query import UDFPlacement
from repro.stats import StatisticsCatalog, make_estimator


@dataclass
class RealbenchConfig:
    """One realbench run, CLI-independent so tests can drive it."""

    n_queries: int = 200
    fact_rows: int = 8_000
    seed: int = 7
    like_prob: float = 0.15
    epochs: int = 8
    hidden_dim: int = 24
    max_feedback_queries: int = 60
    feedback_dir: str | None = None
    out_path: str = "BENCH_duckdb.json"
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)


def build_star_bench(config: RealbenchConfig):
    """(database, simulator benchmark) for the configured star schema."""
    schema = StarSchemaConfig(fact_rows=config.fact_rows, seed=config.seed)
    database = prepare_full_database(generate_star_database(schema))
    workload = WorkloadConfig(
        **{
            **config.workload.__dict__,
            "like_prob": config.like_prob,
        }
    )
    bench = build_benchmark_for_database(
        database.name,
        database,
        config.n_queries,
        seed=config.seed,
        workload_config=workload,
        backend="simulator",
    )
    return database, bench


def execute_on_duckdb(database, bench) -> tuple[dict, dict]:
    """Re-run every simulator-built plan on DuckDB.

    Returns ``(runtimes, parity)``: measured seconds per
    ``(query_id, placement.value)`` and count-parity bookkeeping.
    """
    runtimes: dict[tuple[int, str], float] = {}
    matches = 0
    udf_invocations = 0.0
    mismatches: list[dict] = []
    with DuckDBBackend(database) as backend:
        for entry in bench.entries:
            for placement, run in entry.runs.items():
                result = backend.execute(run.plan)
                key = (entry.query.query_id, placement.value)
                runtimes[key] = result.runtime
                udf_invocations += result.counters.get("udf_invocation")
                expected = _expected_count(run.plan)
                got = _result_count(result)
                if expected is None or got == expected:
                    matches += 1
                else:
                    mismatches.append(
                        {
                            "query_id": entry.query.query_id,
                            "placement": placement.value,
                            "simulator": expected,
                            "duckdb": got,
                        }
                    )
    parity = {
        "plans": matches + len(mismatches),
        "matches": matches,
        "mismatches": mismatches[:10],
        "parity_rate": matches / max(matches + len(mismatches), 1),
        #: proof the Python UDFs really ran inside DuckDB (filter-role
        #: UDFs must; projection-role ones a real optimizer may prune)
        "udf_invocations": udf_invocations,
    }
    return runtimes, parity


def _expected_count(plan) -> int | None:
    """The COUNT(*) value the simulator computed, off the plan's
    ``true_card`` annotations (the aggregate input cardinality)."""
    children = getattr(plan, "children", ())
    if not children:
        return None
    child_card = children[0].true_card
    return int(child_card) if child_card is not None else None


def _result_count(result) -> int | None:
    relation = result.relation
    if "agg" not in relation or relation.num_rows != 1:
        return None
    value = relation.column("agg").python_value(0)
    return None if value is None else int(value)


def fidelity_report(bench, runtimes: dict[tuple[int, str], float]) -> dict:
    """Simulator-vs-DuckDB correlation and advisor sign agreement."""
    sim: list[float] = []
    real: list[float] = []
    per_placement: dict[str, tuple[list[float], list[float]]] = {}
    for entry in bench.entries:
        for placement, run in entry.runs.items():
            key = (entry.query.query_id, placement.value)
            if key not in runtimes:
                continue
            sim.append(run.runtime)
            real.append(runtimes[key])
            bucket = per_placement.setdefault(placement.value, ([], []))
            bucket[0].append(run.runtime)
            bucket[1].append(runtimes[key])

    def spearman(xs: list[float], ys: list[float]) -> dict:
        if len(xs) < 3:
            return {"rho": None, "p_value": None, "n": len(xs)}
        rho, p = scipy_stats.spearmanr(xs, ys)
        return {"rho": float(rho), "p_value": float(p), "n": len(xs)}

    agree = 0
    decided = 0
    for entry in bench.entries:
        pd_key = (entry.query.query_id, UDFPlacement.PUSH_DOWN.value)
        pu_key = (entry.query.query_id, UDFPlacement.PULL_UP.value)
        if pd_key not in runtimes or pu_key not in runtimes:
            continue
        sim_win = (
            entry.runs[UDFPlacement.PULL_UP].runtime
            < entry.runs[UDFPlacement.PUSH_DOWN].runtime
        )
        real_win = runtimes[pu_key] < runtimes[pd_key]
        decided += 1
        agree += int(sim_win == real_win)
    ratios = [r / s for s, r in zip(sim, real) if s > 0]
    return {
        "spearman_overall": spearman(sim, real),
        "spearman_per_placement": {
            name: spearman(xs, ys) for name, (xs, ys) in sorted(per_placement.items())
        },
        "advisor_sign_agreement": {
            "agreement": agree / decided if decided else None,
            "n_decided": decided,
        },
        "runtime_ratio_duckdb_over_sim": {
            "median": float(np.median(ratios)) if ratios else None,
            "p10": float(np.percentile(ratios, 10)) if ratios else None,
            "p90": float(np.percentile(ratios, 90)) if ratios else None,
        },
    }


def feed_real_runtimes(
    config: RealbenchConfig, bench, runtimes: dict[tuple[int, str], float]
) -> dict:
    """Train a quick cost model, serve decisions, record DuckDB
    wall-clock through the feedback log."""
    samples = prepare_dataset_samples(
        bench, estimator_name="actual", placements=training_placements()
    )
    model = GracefulModel(
        GNNConfig(hidden_dim=config.hidden_dim, seed=config.seed),
        TrainConfig(epochs=config.epochs, seed=config.seed),
    )
    model.fit(samples)
    log = FeedbackLog(config.feedback_dir)
    engine = MicroBatchEngine(model.model, cache=PreparedGraphCache())
    service = AdvisorService(
        engine,
        catalog=StatisticsCatalog(bench.database),
        estimator=make_estimator("actual", bench.database),
        feedback=log,
    )
    try:
        records = observe_benchmark(
            service,
            bench,
            max_queries=config.max_feedback_queries,
            backend="duckdb",
            runtimes=runtimes,
        )
    finally:
        engine.close()
        log.flush()
    q_errors = [r.q_error for r in records]
    return {
        "n_records": len(records),
        "n_training_samples": len(samples),
        "backend_tagged": sum(
            1 for r in records if r.metadata.get("backend") == "duckdb"
        ),
        "median_q_error": float(np.median(q_errors)) if q_errors else None,
    }


def run_realbench(config: RealbenchConfig) -> dict:
    """The full pipeline; returns the BENCH_duckdb.json payload."""
    t0 = time.perf_counter()
    database, bench = build_star_bench(config)
    build_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    runtimes, parity = execute_on_duckdb(database, bench)
    duckdb_seconds = time.perf_counter() - t0

    fidelity = fidelity_report(bench, runtimes)
    feedback = feed_real_runtimes(config, bench, runtimes)
    n_udf = sum(1 for e in bench.entries if e.query.has_udf)
    return {
        "config": {
            "n_queries": config.n_queries,
            "fact_rows": config.fact_rows,
            "seed": config.seed,
            "like_prob": config.like_prob,
        },
        "workload": {
            "n_queries": bench.n_queries,
            "n_plans_executed": len(runtimes),
            "n_udf_queries": n_udf,
            "database_rows": database.total_rows(),
        },
        "count_parity": parity,
        "fidelity": fidelity,
        "feedback": feedback,
        "seconds": {
            "simulator_build": build_seconds,
            "duckdb_execute": duckdb_seconds,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--fact-rows", type=int, default=8_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--like-prob", type=float, default=0.15)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--hidden-dim", type=int, default=24)
    parser.add_argument("--max-feedback-queries", type=int, default=60)
    parser.add_argument("--feedback-dir", default=None)
    parser.add_argument("--out", default="BENCH_duckdb.json")
    args = parser.parse_args(argv)

    if not backend_available("duckdb"):
        print(
            "realbench needs the DuckDB backend: pip install -e \".[duckdb]\""
        )
        return 2

    config = RealbenchConfig(
        n_queries=args.queries,
        fact_rows=args.fact_rows,
        seed=args.seed,
        like_prob=args.like_prob,
        epochs=args.epochs,
        hidden_dim=args.hidden_dim,
        max_feedback_queries=args.max_feedback_queries,
        feedback_dir=args.feedback_dir,
        out_path=args.out,
    )
    report = run_realbench(config)
    with open(config.out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    rho = report["fidelity"]["spearman_overall"]["rho"]
    parity = report["count_parity"]["parity_rate"]
    print(
        f"wrote {config.out_path}: {report['workload']['n_plans_executed']} plans, "
        f"count parity {parity:.3f}, spearman rho "
        f"{rho if rho is None else round(rho, 3)}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
