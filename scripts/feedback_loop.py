#!/usr/bin/env python
"""Run the closed feedback loop: monitor drift, retrain, canary-promote.

Trains (or reuses from the registry) a cost model for the chosen
dataset, serves it through a micro-batching engine with a feedback log
attached, optionally simulates serving traffic against the simulated
executor, and runs the drift→retrain→promote loop either once
(``--once``) or as a paced daemon::

    PYTHONPATH=src python scripts/feedback_loop.py --dataset movielens \\
        --simulate 4 --drift-factor 5.0 --once

    PYTHONPATH=src python scripts/feedback_loop.py --interval 30

The daemon drains cleanly on SIGTERM/SIGINT. See
``examples/continual_learning.py`` for the full end-to-end story with
generator-level drift injection.
"""

from __future__ import annotations

import argparse
import signal
import threading

import numpy as np

from repro.bench import build_dataset_benchmark
from repro.eval import prepare_dataset_samples, training_placements
from repro.feedback import (
    DriftConfig,
    FeedbackLog,
    FeedbackLoop,
    RetrainConfig,
    observe_benchmark,
    select_serving_version,
    serving_baseline,
)
from repro.model import GNNConfig, GracefulModel, PreparedGraphCache, TrainConfig
from repro.serve import AdvisorService, MicroBatchEngine, ModelRegistry
from repro.stats import StatisticsCatalog, make_estimator


def train_or_load(args, registry, bench):
    """(model, version, baseline_median) for the parsed CLI options."""
    model_name = args.model or f"costgnn-{args.dataset}"
    # not versions[-1]: the latest version may be a canary candidate
    # that lost (or never finished) its shadow comparison — serve the
    # newest *promoted* version, else the newest original publication
    version = select_serving_version(registry, model_name)
    if version is not None and not args.retrain:
        model = registry.load(model_name, version.version)
        baseline = serving_baseline(version)
        print(f"serving registry model {version.ref}")
        return model, version, baseline
    print(f"training {model_name} (epochs={args.epochs})...")
    samples = prepare_dataset_samples(
        bench, estimator_name="actual", placements=training_placements()
    )
    graceful = GracefulModel(
        GNNConfig(hidden_dim=args.hidden_dim),
        TrainConfig(epochs=args.epochs),
    )
    graceful.fit(samples)
    predictions = graceful.predict(samples)
    runtimes = np.asarray([s.runtime for s in samples])
    q_errors = np.maximum(predictions / runtimes, runtimes / predictions)
    baseline = float(np.median(q_errors))
    version = registry.publish(
        model_name,
        graceful.model,
        metrics={"median_q": baseline, "n_training_samples": len(samples)},
        description=f"trained by scripts/feedback_loop.py on {args.dataset}",
    )
    print(f"published {version.ref} (training median Q-error {baseline:.3f})")
    return graceful.model, version, baseline


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="movielens")
    parser.add_argument("--queries", type=int, default=60)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--hidden-dim", type=int, default=24)
    parser.add_argument("--epochs", type=int, default=60)
    parser.add_argument("--model", default="", help="registry model name")
    parser.add_argument("--registry-dir", default=None)
    parser.add_argument("--feedback-dir", default=None)
    parser.add_argument(
        "--retrain", action="store_true", help="train even if a version exists"
    )
    parser.add_argument(
        "--simulate",
        type=int,
        default=0,
        help="passes of simulated serving traffic to feed the log first",
    )
    parser.add_argument(
        "--drift-factor",
        type=float,
        default=1.0,
        help="scale simulated observed runtimes (synthetic drift injection)",
    )
    parser.add_argument(
        "--once", action="store_true", help="run one loop step and exit"
    )
    parser.add_argument("--interval", type=float, default=30.0)
    parser.add_argument("--max-steps", type=int, default=None)
    parser.add_argument("--baseline", type=float, default=None)
    parser.add_argument("--window", type=int, default=256)
    parser.add_argument("--min-samples", type=int, default=48)
    parser.add_argument("--level-ratio", type=float, default=1.5)
    parser.add_argument("--retrain-epochs", type=int, default=25)
    parser.add_argument("--min-improvement", type=float, default=0.05)
    args = parser.parse_args(argv)

    registry = ModelRegistry(args.registry_dir)
    print(f"building {args.dataset} benchmark ({args.queries} queries)...")
    bench = build_dataset_benchmark(
        args.dataset, n_queries=args.queries, seed=args.seed
    )
    model, version, trained_baseline = train_or_load(args, registry, bench)
    baseline = args.baseline if args.baseline is not None else trained_baseline
    if not baseline or baseline < 1.0:
        baseline = 1.0

    log = FeedbackLog(args.feedback_dir)
    engine = MicroBatchEngine(model, cache=PreparedGraphCache())
    service = AdvisorService(
        engine,
        catalog=StatisticsCatalog(bench.database),
        estimator=make_estimator("actual", bench.database),
        feedback=log,
    )
    loop = FeedbackLoop(
        log,
        engine,
        registry,
        version.name,
        baseline_median=baseline,
        live_ref=version.ref,
        drift_config=DriftConfig(
            window=args.window,
            min_samples=args.min_samples,
            level_ratio=args.level_ratio,
        ),
        retrain_config=RetrainConfig(
            epochs=args.retrain_epochs,
            min_improvement=args.min_improvement,
        ),
        on_promote=lambda v: print(f"promoted {v.ref}"),
    )

    if args.simulate:
        print(
            f"simulating {args.simulate} traffic passes "
            f"(drift factor {args.drift_factor})..."
        )
        records = observe_benchmark(
            service,
            bench,
            repeats=args.simulate,
            drift_factor=args.drift_factor,
        )
        q_median = float(np.median([r.q_error for r in records]))
        print(f"collected {len(records)} records (median Q-error {q_median:.3f})")

    stop = threading.Event()

    def handle_signal(signum, frame):
        stop.set()

    previous = signal.signal(signal.SIGTERM, handle_signal)
    try:
        if args.once:
            event = loop.step()
            print(f"step: {event.action if event else 'stable'}")
            if event is not None:
                print(f"  {event.detail}")
        else:
            print(f"feedback loop every {args.interval}s (ctrl-c to stop)")
            loop.run(
                interval_seconds=args.interval,
                stop=stop,
                max_steps=args.max_steps,
            )
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        engine.close()
        log.flush()
    summary = loop.describe()
    print(
        f"done: {summary['steps']} steps, {summary['retrains']} retrains, "
        f"{summary['promotions']} promotions, "
        f"{summary['rejections']} rejections; live model {loop.live_ref}"
    )


if __name__ == "__main__":
    main()
