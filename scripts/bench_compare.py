#!/usr/bin/env python
"""Perf regression gate: fresh BENCH_*.json vs. recorded baselines.

The bench-smoke CI job regenerates every ``BENCH_*.json`` and uploads
them as artifacts; this script diffs the fresh working-tree numbers
against the recorded baselines and prints a markdown delta table for the
job summary::

    python scripts/bench_compare.py [--threshold 0.25] [--no-gate]

Two severity tiers:

* regressions beyond ``--threshold`` (default 25%) are flagged with
  GitHub ``::warning::`` annotations — informational, runners are noisy;
* regressions beyond ``--gate-threshold`` (default 30%) on a
  *directional* metric emit ``::error::`` and **fail the run** (exit 1).
  ``--no-gate`` downgrades them back to warnings — the escape hatch for
  an intentional re-baselining PR or a known-noisy host.

The gate compares against the last ``bench_history.jsonl`` entry when
one exists (the freshest recorded trajectory point), falling back to the
committed baselines (``git show HEAD:BENCH_x.json``). Metrics below the
measurement noise floor — sub-millisecond timings, microsecond knobs
under 1ms, sub-millisecond elapsed seconds — never gate: scheduler
jitter on shared runners swamps them. Neither does the
``multiproc_smoke`` artifact, whose QPS is a liveness signal on whatever
machine ran it, not a perf trajectory.

Each run also appends one JSON line — commit, timestamp, and every
directional metric of every ``BENCH_*.json`` — to ``bench_history.jsonl``
(``--history`` to relocate, ``--no-history`` to skip). CI uploads the
file next to the ``BENCH_*.json`` artifacts, so the perf trajectory
accumulates run over run instead of living only in the latest snapshot.
"""

from __future__ import annotations

import argparse
import glob
import json
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
HISTORY_PATH = ROOT / "bench_history.jsonl"

#: metric-name fragments where bigger numbers are better / worse
HIGHER_IS_BETTER = ("speedup", "per_second", "qps", "hit", "mean_batch_size")
LOWER_IS_BETTER = ("seconds", "_us", "_ms", "latency", "overhead", "samples")

#: path fragments that are configuration/run-shape, not perf: a changed
#: knob (loadtest max_wait_us, scenario duration, poll count) must never
#: be reported as a perf regression
#: (BENCH_obs's ``trace.*`` table is per-request attribution from a
#: handful of sampled traces — diagnostic, not a perf trajectory)
NOT_A_METRIC = (".config.", "stats_poll.samples", "trace.")

#: benches whose numbers are liveness smoke signals, not a perf
#: trajectory — warn, record in history, but never fail the run
NEVER_GATE_BENCHES = ("multiproc_smoke", "runner_smoke")


def noise_floor(metric: str, baseline: float) -> bool:
    """Magnitudes too small to gate: scheduler jitter on shared CI
    runners swamps sub-millisecond timings, so a 30% swing there is
    measurement noise, not a regression."""
    leaf = metric.rsplit(".", 1)[-1]
    if leaf.endswith("_ms") and baseline < 1.0:
        return True
    if leaf.endswith("_us") and baseline < 1000.0:
        return True
    if "seconds" in leaf and baseline < 1e-3:
        return True
    return False


def flatten(node, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested JSON document, dot-keyed."""
    out: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                out[path] = float(value)
            else:
                out.update(flatten(value, path))
    return out


def direction(metric: str) -> int:
    """+1 when higher is better, -1 when lower is better, 0 unknown."""
    for fragment in NOT_A_METRIC:
        if fragment in metric:
            return 0
    leaf = metric.rsplit(".", 1)[-1]
    if "scenarios." in metric and leaf == "seconds":
        return 0  # a scenario's elapsed time is its configured duration
    for fragment in HIGHER_IS_BETTER:
        if fragment in leaf:
            return 1
    for fragment in LOWER_IS_BETTER:
        if fragment in leaf:
            return -1
    return 0


def judge(baseline: float, fresh: float, sign: int, threshold: float):
    """``(delta display, regressed?)`` for one metric.

    Relative deltas only make sense against a positive magnitude; for a
    zero or negative baseline (e.g. ``overhead_fraction``, where a noise
    floor lands below zero) the ratio flips sign and calls a regression
    an improvement — those metrics compare by absolute delta instead.
    """
    if baseline > 0:
        delta = fresh / baseline - 1.0
        display = f"{delta:+.1%}"
    else:
        delta = fresh - baseline
        display = f"{delta:+.3g} abs"
    if sign > 0:
        return display, delta < -threshold
    return display, delta > threshold


def committed_baseline(name: str) -> dict | None:
    """The HEAD version of one BENCH file, or None when untracked."""
    proc = subprocess.run(
        ["git", "show", f"HEAD:{name}"],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def last_history_entry(path: Path) -> dict | None:
    """The newest ``bench_history.jsonl`` record, or None."""
    try:
        lines = [ln for ln in path.read_text().splitlines() if ln.strip()]
        return json.loads(lines[-1]) if lines else None
    except (OSError, json.JSONDecodeError):
        return None


def compare(
    threshold: float, gate_threshold: float, history_path: Path
) -> tuple[list[str], list[str]]:
    """Print the delta table; return ``(warnings, gate failures)``.

    The warn tier always diffs against the committed baselines (the
    human-recorded numbers); the gate tier prefers the last history
    entry — the freshest point on the same machine's trajectory — and
    falls back to the committed value.
    """
    history = last_history_entry(history_path)
    warnings: list[str] = []
    failures: list[str] = []
    rows: list[tuple[str, str, str, str, str]] = []
    for path in sorted(glob.glob(str(ROOT / "BENCH_*.json"))):
        name = Path(path).name
        bench = name[len("BENCH_") : -len(".json")]
        with open(path) as fh:
            fresh = flatten(json.load(fh))
        baseline_doc = committed_baseline(name)
        if baseline_doc is None:
            rows.append((bench, "(new benchmark)", "-", "-", "no baseline"))
            continue
        baseline = flatten(baseline_doc)
        history_bench = (history or {}).get("benches", {}).get(bench, {})
        for metric in sorted(fresh):
            if metric not in baseline:
                continue
            sign = direction(metric)
            if sign == 0:
                continue  # counts/configs: not a perf trajectory
            display, regressed = judge(baseline[metric], fresh[metric], sign, threshold)
            marker = "REGRESSED" if regressed else "ok"
            rows.append(
                (
                    bench,
                    metric,
                    f"{baseline[metric]:.4g}",
                    f"{fresh[metric]:.4g}",
                    f"{display} {marker}",
                )
            )
            if not regressed:
                continue
            gate_base = history_bench.get(metric, baseline[metric])
            gate_display, gated = judge(
                gate_base, fresh[metric], sign, gate_threshold
            )
            if (
                gated
                and bench not in NEVER_GATE_BENCHES
                and not noise_floor(metric, gate_base)
            ):
                failures.append(
                    f"::error file={name}::{bench}.{metric} regressed "
                    f"{gate_display} vs recorded baseline "
                    f"({gate_base:.4g} -> {fresh[metric]:.4g})"
                )
            else:
                warnings.append(
                    f"::warning file={name}::{bench}.{metric} regressed "
                    f"{display} vs committed baseline "
                    f"({baseline[metric]:.4g} -> {fresh[metric]:.4g})"
                )
    print("### Benchmark deltas vs. committed baselines")
    print()
    print(f"(warn past {threshold:.0%}, fail past {gate_threshold:.0%})")
    print()
    print("| benchmark | metric | baseline | fresh | delta |")
    print("|---|---|---|---|---|")
    for row in rows:
        print("| " + " | ".join(row) + " |")
    if not rows:
        print("| - | no BENCH_*.json found | - | - | - |")
    return warnings, failures


def current_commit() -> str:
    proc = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    return proc.stdout.strip() if proc.returncode == 0 else ""


def append_history(path: Path) -> dict:
    """Append this run's directional metrics as one ``jsonl`` record.

    The record is the same shape run over run — ``{bench: {metric:
    value}}`` plus commit/timestamp — so the trajectory is greppable and
    trivially plottable across CI artifacts.
    """
    benches: dict[str, dict[str, float]] = {}
    for bench_path in sorted(glob.glob(str(ROOT / "BENCH_*.json"))):
        name = Path(bench_path).name[len("BENCH_") : -len(".json")]
        with open(bench_path) as fh:
            flat = flatten(json.load(fh))
        benches[name] = {
            metric: value
            for metric, value in sorted(flat.items())
            if direction(metric) != 0
        }
    entry = {
        "timestamp": time.time(),
        "commit": current_commit(),
        "benches": benches,
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative delta that counts as a regression (default 0.25)",
    )
    parser.add_argument(
        "--history",
        default=str(HISTORY_PATH),
        help="bench_history.jsonl location (the CI perf-trajectory artifact)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip appending this run to the history file",
    )
    parser.add_argument(
        "--gate-threshold",
        type=float,
        default=0.30,
        help="relative regression on a directional metric that fails the "
        "run (default 0.30)",
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="downgrade gate failures to warnings (re-baselining PRs, "
        "known-noisy hosts)",
    )
    args = parser.parse_args(argv)
    warnings, failures = compare(
        args.threshold, args.gate_threshold, Path(args.history)
    )
    for line in warnings:
        print(line, file=sys.stderr)
    if args.no_gate and failures:
        print("(--no-gate: downgrading gate failures to warnings)")
        for line in failures:
            print(line.replace("::error", "::warning", 1), file=sys.stderr)
        failures = []
    for line in failures:
        print(line, file=sys.stderr)
    if not args.no_history:
        entry = append_history(Path(args.history))
        print()
        print(
            f"(appended {sum(len(b) for b in entry['benches'].values())} "
            f"metrics for commit {entry['commit'] or '?'} to {args.history})"
        )
    # small deltas only warn — noisy CI hardware must not fail the job on
    # a perf wobble — but a past-gate collapse of a directional metric
    # does fail it (``--no-gate`` to bypass)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
