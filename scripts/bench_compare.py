#!/usr/bin/env python
"""Warn-only perf regression check: fresh BENCH_*.json vs. committed.

The bench-smoke CI job regenerates every ``BENCH_*.json`` and uploads
them as artifacts, but until now nobody *compared* them — a perf
regression only surfaced when a human diffed artifacts by hand. This
script diffs the fresh working-tree numbers against the committed
baselines (``git show HEAD:BENCH_x.json``) and prints a markdown delta
table for the job summary::

    python scripts/bench_compare.py [--threshold 0.25]

Regressions beyond the threshold are flagged with GitHub ``::warning::``
annotations. **Warn-only by design**: CI runners are noisy shared
hardware, so the exit code is always 0 — the table and the annotations
inform, the committed baselines stay authoritative until a human
re-records them.

Each run also appends one JSON line — commit, timestamp, and every
directional metric of every ``BENCH_*.json`` — to ``bench_history.jsonl``
(``--history`` to relocate, ``--no-history`` to skip). CI uploads the
file next to the ``BENCH_*.json`` artifacts, so the perf trajectory
accumulates run over run instead of living only in the latest snapshot.
"""

from __future__ import annotations

import argparse
import glob
import json
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
HISTORY_PATH = ROOT / "bench_history.jsonl"

#: metric-name fragments where bigger numbers are better / worse
HIGHER_IS_BETTER = ("speedup", "per_second", "qps", "hit", "mean_batch_size")
LOWER_IS_BETTER = ("seconds", "_us", "_ms", "latency", "overhead", "samples")

#: path fragments that are configuration/run-shape, not perf: a changed
#: knob (loadtest max_wait_us, scenario duration, poll count) must never
#: be reported as a perf regression
NOT_A_METRIC = (".config.", "stats_poll.samples")


def flatten(node, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested JSON document, dot-keyed."""
    out: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                out[path] = float(value)
            else:
                out.update(flatten(value, path))
    return out


def direction(metric: str) -> int:
    """+1 when higher is better, -1 when lower is better, 0 unknown."""
    for fragment in NOT_A_METRIC:
        if fragment in metric:
            return 0
    leaf = metric.rsplit(".", 1)[-1]
    if "scenarios." in metric and leaf == "seconds":
        return 0  # a scenario's elapsed time is its configured duration
    for fragment in HIGHER_IS_BETTER:
        if fragment in leaf:
            return 1
    for fragment in LOWER_IS_BETTER:
        if fragment in leaf:
            return -1
    return 0


def judge(baseline: float, fresh: float, sign: int, threshold: float):
    """``(delta display, regressed?)`` for one metric.

    Relative deltas only make sense against a positive magnitude; for a
    zero or negative baseline (e.g. ``overhead_fraction``, where a noise
    floor lands below zero) the ratio flips sign and calls a regression
    an improvement — those metrics compare by absolute delta instead.
    """
    if baseline > 0:
        delta = fresh / baseline - 1.0
        display = f"{delta:+.1%}"
    else:
        delta = fresh - baseline
        display = f"{delta:+.3g} abs"
    if sign > 0:
        return display, delta < -threshold
    return display, delta > threshold


def committed_baseline(name: str) -> dict | None:
    """The HEAD version of one BENCH file, or None when untracked."""
    proc = subprocess.run(
        ["git", "show", f"HEAD:{name}"],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def compare(threshold: float) -> list[str]:
    """Print the delta table; return the ::warning:: annotations."""
    warnings: list[str] = []
    rows: list[tuple[str, str, str, str, str]] = []
    for path in sorted(glob.glob(str(ROOT / "BENCH_*.json"))):
        name = Path(path).name
        bench = name[len("BENCH_") : -len(".json")]
        with open(path) as fh:
            fresh = flatten(json.load(fh))
        baseline_doc = committed_baseline(name)
        if baseline_doc is None:
            rows.append((bench, "(new benchmark)", "-", "-", "no baseline"))
            continue
        baseline = flatten(baseline_doc)
        for metric in sorted(fresh):
            if metric not in baseline:
                continue
            sign = direction(metric)
            if sign == 0:
                continue  # counts/configs: not a perf trajectory
            display, regressed = judge(baseline[metric], fresh[metric], sign, threshold)
            marker = "REGRESSED" if regressed else "ok"
            rows.append(
                (
                    bench,
                    metric,
                    f"{baseline[metric]:.4g}",
                    f"{fresh[metric]:.4g}",
                    f"{display} {marker}",
                )
            )
            if regressed:
                warnings.append(
                    f"::warning file={name}::{bench}.{metric} regressed "
                    f"{display} vs committed baseline "
                    f"({baseline[metric]:.4g} -> {fresh[metric]:.4g})"
                )
    print("### Benchmark deltas vs. committed baselines")
    print()
    print(f"(threshold {threshold:.0%}, warn-only)")
    print()
    print("| benchmark | metric | baseline | fresh | delta |")
    print("|---|---|---|---|---|")
    for row in rows:
        print("| " + " | ".join(row) + " |")
    if not rows:
        print("| - | no BENCH_*.json found | - | - | - |")
    return warnings


def current_commit() -> str:
    proc = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    return proc.stdout.strip() if proc.returncode == 0 else ""


def append_history(path: Path) -> dict:
    """Append this run's directional metrics as one ``jsonl`` record.

    The record is the same shape run over run — ``{bench: {metric:
    value}}`` plus commit/timestamp — so the trajectory is greppable and
    trivially plottable across CI artifacts.
    """
    benches: dict[str, dict[str, float]] = {}
    for bench_path in sorted(glob.glob(str(ROOT / "BENCH_*.json"))):
        name = Path(bench_path).name[len("BENCH_") : -len(".json")]
        with open(bench_path) as fh:
            flat = flatten(json.load(fh))
        benches[name] = {
            metric: value
            for metric, value in sorted(flat.items())
            if direction(metric) != 0
        }
    entry = {
        "timestamp": time.time(),
        "commit": current_commit(),
        "benches": benches,
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative delta that counts as a regression (default 0.25)",
    )
    parser.add_argument(
        "--history",
        default=str(HISTORY_PATH),
        help="bench_history.jsonl location (the CI perf-trajectory artifact)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip appending this run to the history file",
    )
    args = parser.parse_args(argv)
    warnings = compare(args.threshold)
    for line in warnings:
        print(line, file=sys.stderr)
    if not args.no_history:
        entry = append_history(Path(args.history))
        print()
        print(
            f"(appended {sum(len(b) for b in entry['benches'].values())} "
            f"metrics for commit {entry['commit'] or '?'} to {args.history})"
        )
    # warn-only: noisy CI hardware must not fail the job on a perf wobble
    return 0


if __name__ == "__main__":
    sys.exit(main())
