#!/usr/bin/env python
"""Start, inspect, and resume distributed experiment sweeps (DESIGN.md §16).

A sweep decomposes an experiment into durable task files under one
directory; runner processes claim tasks under heartbeat-renewed leases,
retry with capped backoff, and quarantine poison tasks — so the sweep
always terminates with every task done or quarantined, never lost::

    PYTHONPATH=src python scripts/sweep.py start --tasks demo:24 \
        --dir /tmp/sweep0 --runners 4
    PYTHONPATH=src python scripts/sweep.py status --dir /tmp/sweep0
    PYTHONPATH=src python scripts/sweep.py resume --dir /tmp/sweep0 --runners 2

``--tasks`` selects the decomposition: ``demo:N`` (N deterministic
compute tasks — the chaos/CI workload, no dataset builds), ``folds``
(leave-one-out CV at ``--scale``), or ``ablation`` (Fig. 7 steps ×
seeds). ``folds``/``ablation`` merges land in the shared resultstore
under the same fingerprints the serial drivers use, so a distributed
sweep warms the exact cache entry ``run_folds``/``run_ablation`` reads.

**Chaos mode** (``--chaos quick|storm``) arms the scenario book: runner
processes are SIGKILLed while provably holding a lease and in-process
faults (injected errors, heartbeat freezes) are armed via
``repro.serve.faults`` — then the report asserts the durability
contract: zero lost tasks, reclaims observed, and (for demo tasks)
results identical to a serial execution of the same task list::

    PYTHONPATH=src python scripts/sweep.py start --tasks demo:16 \
        --runners 2 --chaos quick --out BENCH_runner_smoke.json

Exit codes: 0 = terminal sweep, contract held; 2 = tasks lost or chaos
parity violated; 3 = sweep finished with quarantined tasks (inspect
``<dir>/quarantine/*.traceback.txt``).
"""

from __future__ import annotations

import argparse
import json
import pickle
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.eval.runner import (  # noqa: E402
    ChaosPlan,
    Sweep,
    SweepConfig,
    ablation_sweep_tasks,
    demo_sweep_tasks,
    folds_sweep_tasks,
    merge_ablation,
    merge_folds,
    run_sweep_local,
)

#: the chaos scenario book: driver-side kills + in-process fault specs.
#: ``quick`` is the CI smoke (2 kills, a sprinkle of claim errors);
#: ``storm`` piles on heartbeat freezes and task errors for local soak.
CHAOS_SCENARIOS = {
    "quick": ChaosPlan(
        kills=2,
        min_interval_s=0.2,
        fault_spec="seed=7;task.claim:error:0.02",
    ),
    "storm": ChaosPlan(
        kills=4,
        min_interval_s=0.3,
        fault_spec=(
            "seed=11;task.claim:error:0.05;"
            "runner.task:error:0.05;runner.heartbeat:delay:0.02:0.05"
        ),
    ),
}


def _build_tasks(args, sweep: Sweep) -> int:
    kind = args.tasks
    if kind.startswith("demo:"):
        n = int(kind.split(":", 1)[1])
        return sweep.add_tasks(
            demo_sweep_tasks(
                n,
                size=args.demo_size,
                reps=args.demo_reps,
                sleep_s=args.demo_sleep,
            )
        )
    import os

    from repro.eval.experiments import scale_from_env

    os.environ["REPRO_SCALE"] = args.scale
    scale = scale_from_env()
    with open(sweep.root / "config.pkl", "wb") as fh:
        pickle.dump(scale, fh)
    if kind == "folds":
        return sweep.add_tasks(folds_sweep_tasks(scale), dedupe=True)
    if kind == "ablation":
        return sweep.add_tasks(ablation_sweep_tasks(scale), dedupe=True)
    raise SystemExit(f"unknown --tasks {kind!r}; want demo:N, folds, or ablation")


def _serial_demo_results(sweep: Sweep) -> dict[int, bytes]:
    """Execute the sweep's demo tasks serially in-process; pickled
    results by index (the byte-identity reference for chaos parity)."""
    from repro.eval.runner import run_demo_task

    out: dict[int, bytes] = {}
    for spec in sweep.tasks():
        out[spec.index] = pickle.dumps(
            run_demo_task(spec.params), protocol=pickle.HIGHEST_PROTOCOL
        )
    return out


def _sweep_kind(sweep: Sweep) -> str:
    """The decomposition the sweep was started with (its description),
    so ``resume``/``status`` don't depend on re-passing ``--tasks``."""
    return (sweep.manifest() or {}).get("description", "")


def _merge(sweep: Sweep) -> None:
    kind = _sweep_kind(sweep)
    if kind in ("folds", "ablation"):
        scale = sweep.load_config()
        if scale is None:
            return
        if kind == "folds":
            merge_folds(sweep, scale)
        else:
            merge_ablation(sweep, scale)


def cmd_start(args) -> int:
    if args.dir:
        root = Path(args.dir)
    else:
        root = Path(tempfile.mkdtemp(prefix="repro-sweep-"))
    config = SweepConfig(
        lease_seconds=args.lease,
        heartbeat_seconds=max(0.05, args.lease / 5.0),
        max_attempts=args.max_attempts,
        max_reclaims=args.max_reclaims,
    )
    sweep = Sweep.create(root, config=config, description=args.tasks)
    added = _build_tasks(args, sweep)
    print(f"sweep {sweep.manifest()['sweep_id']} at {root}: {added} tasks")
    return _drive(args, sweep)


def cmd_resume(args) -> int:
    if not args.dir:
        raise SystemExit("resume requires --dir")
    sweep = Sweep.open(args.dir)
    status = sweep.status()
    print(f"resuming {sweep.manifest()['sweep_id']}: {status.to_json()}")
    if status.terminal:
        print("sweep already terminal")
        return _report(args, sweep, None, serial_ref=None)
    return _drive(args, sweep)


def cmd_status(args) -> int:
    if not args.dir:
        raise SystemExit("status requires --dir")
    sweep = Sweep.open(args.dir)
    status = sweep.status()
    doc = {"sweep": sweep.manifest(), "status": status.to_json()}
    for spec in sweep.tasks():
        if sweep.is_quarantined(spec.task_id):
            doc.setdefault("quarantined", []).append(
                sweep.quarantine_record(spec.task_id)
            )
    print(json.dumps(doc, indent=2, sort_keys=True, default=str))
    return 0 if status.lost == 0 else 2


def _drive(args, sweep: Sweep) -> int:
    chaos = CHAOS_SCENARIOS[args.chaos] if args.chaos else None
    serial_ref = None
    if chaos is not None and _sweep_kind(sweep).startswith("demo:"):
        serial_ref = _serial_demo_results(sweep)
    report = run_sweep_local(
        sweep,
        n_runners=args.runners,
        chaos=chaos,
        timeout=args.timeout,
    )
    return _report(args, sweep, report, serial_ref)


def _report(args, sweep: Sweep, report, serial_ref) -> int:
    status = sweep.status()
    doc = {
        "sweep": sweep.manifest(),
        "status": status.to_json(),
        "report": report.to_json() if report is not None else None,
        "chaos": args.chaos or "",
        "runners": args.runners,
    }
    code = 0
    if status.lost > 0:
        doc["verdict"] = "LOST TASKS"
        code = 2
    elif status.quarantined > 0:
        doc["verdict"] = "quarantined tasks (inspect sidecars)"
        code = 3
    else:
        doc["verdict"] = "ok"
    if serial_ref is not None and code == 0:
        results, _ = sweep.collect()
        mismatches = sum(
            1
            for index, ref in serial_ref.items()
            if pickle.dumps(results.get(index), protocol=pickle.HIGHEST_PROTOCOL) != ref
        )
        doc["serial_parity"] = {
            "compared": len(serial_ref),
            "mismatches": mismatches,
        }
        if mismatches:
            doc["verdict"] = "CHAOS PARITY VIOLATED"
            code = 2
        elif report is not None and report.kills > 0 and report.reclaims == 0:
            doc["verdict"] = "chaos kills produced no reclaims"
            code = 2
    if code == 0:
        try:
            _merge(sweep)
        except Exception as exc:  # merge failures should not mask the sweep
            doc["merge_error"] = str(exc)
    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2, sort_keys=True))
        print(f"wrote {args.out}")
    print(json.dumps(doc["status"], sort_keys=True))
    print(f"verdict: {doc['verdict']}")
    if args.cleanup and code == 0:
        shutil.rmtree(sweep.root, ignore_errors=True)
    return code


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "command",
        choices=("start", "status", "resume"),
        help="start a new sweep, inspect one, or resume an interrupted one",
    )
    parser.add_argument("--dir", default="", help="sweep directory (start: optional)")
    parser.add_argument(
        "--tasks",
        default="demo:16",
        help="decomposition: demo:N, folds, or ablation (default demo:16)",
    )
    parser.add_argument("--scale", default="quick", help="experiment scale name")
    parser.add_argument("--runners", type=int, default=2)
    parser.add_argument(
        "--chaos",
        default="",
        choices=("", *CHAOS_SCENARIOS),
        help="arm a chaos scenario (kills lease-holding runners mid-task)",
    )
    parser.add_argument("--lease", type=float, default=3.0)
    parser.add_argument("--max-attempts", type=int, default=3)
    parser.add_argument("--max-reclaims", type=int, default=4)
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument("--out", default="", help="write the JSON report here")
    parser.add_argument(
        "--cleanup",
        action="store_true",
        help="remove the sweep directory after a clean terminal run",
    )
    parser.add_argument("--demo-size", type=int, default=50_000)
    parser.add_argument("--demo-reps", type=int, default=60)
    parser.add_argument("--demo-sleep", type=float, default=0.05)
    args = parser.parse_args(argv)
    started = time.time()
    code = {"start": cmd_start, "status": cmd_status, "resume": cmd_resume}[
        args.command
    ](args)
    print(f"elapsed: {time.time() - started:.2f}s (exit {code})")
    return code


if __name__ == "__main__":
    raise SystemExit(main())
