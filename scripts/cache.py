#!/usr/bin/env python
"""Inspect and manage the experiment result store (.bench_cache).

    scripts/cache.py list [--kind KIND]     # entries, newest first
    scripts/cache.py stats                  # per-kind counts and bytes
    scripts/cache.py clear [--kind KIND]    # delete entries
    scripts/cache.py gc --max-bytes SIZE    # LRU-evict down to SIZE (e.g. 2G)

The store root is ``$REPRO_CACHE_DIR`` or ``<repo>/.bench_cache``; every
entry is keyed by a config fingerprint (see ``repro/eval/resultstore.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.eval.resultstore import default_store  # noqa: E402

_UNITS = {"": 1, "k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}


def parse_size(text: str) -> int:
    """'500m', '2G', '1048576' -> bytes."""
    text = text.strip().lower().removesuffix("b")
    unit = text[-1] if text and text[-1] in _UNITS else ""
    number = text[: len(text) - len(unit)]
    try:
        return int(float(number) * _UNITS[unit])
    except ValueError:
        raise SystemExit(f"unparseable size {text!r} (try 500M, 2G, ...)")


def fmt_size(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:7.1f} {unit}"
        n /= 1024
    return f"{n:.1f}"


def cmd_list(store, args) -> int:
    entries = sorted(store.entries(), key=lambda e: e.created, reverse=True)
    if args.kind:
        entries = [e for e in entries if e.kind == args.kind]
    if not entries:
        print("store is empty" + (f" (kind {args.kind!r})" if args.kind else ""))
        return 0
    for e in entries:
        created = time.strftime("%Y-%m-%d %H:%M", time.localtime(e.created))
        print(
            f"{e.kind:10s} {e.fingerprint:16s} {fmt_size(e.bytes)}  "
            f"{created}  {e.description}"
        )
    print(f"-- {len(entries)} entries, {fmt_size(sum(e.bytes for e in entries))}")
    return 0


def cmd_stats(store, args) -> int:
    print(json.dumps(store.stats(), indent=2))
    return 0


def cmd_clear(store, args) -> int:
    removed = store.clear(kind=args.kind)
    suffix = f" of kind {args.kind!r}" if args.kind else ""
    print(f"removed {removed} entries{suffix}")
    return 0


def cmd_gc(store, args) -> int:
    report = store.gc(parse_size(args.max_bytes))
    print(
        f"evicted {len(report['evicted'])} entries, "
        f"freed {fmt_size(report['freed_bytes'])}, "
        f"{fmt_size(report['remaining_bytes'])} remain"
    )
    for name in report["evicted"]:
        print(f"  - {name}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_list = sub.add_parser("list", help="list entries, newest first")
    p_list.add_argument("--kind", help="only this entry kind (bench/samples/...)")
    p_list.set_defaults(fn=cmd_list)
    p_stats = sub.add_parser("stats", help="per-kind counts and bytes")
    p_stats.set_defaults(fn=cmd_stats)
    p_clear = sub.add_parser("clear", help="delete entries")
    p_clear.add_argument("--kind", help="only this entry kind")
    p_clear.set_defaults(fn=cmd_clear)
    p_gc = sub.add_parser("gc", help="LRU-evict entries down to a byte budget")
    p_gc.add_argument(
        "--max-bytes", required=True, help="target total size, e.g. 500M or 2G"
    )
    p_gc.set_defaults(fn=cmd_gc)
    args = parser.parse_args(argv)
    return args.fn(default_store(), args)


if __name__ == "__main__":
    raise SystemExit(main())
