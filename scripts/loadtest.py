#!/usr/bin/env python
"""Open-loop load generator for the sharded serving fast path.

Drives the :class:`~repro.serve.ShardedEngine` (the engine behind
``/predict`` and ``/advise``) with a configurable synthetic workload and
reports what a capacity plan needs: sustained QPS, latency percentiles,
and cache effectiveness::

    PYTHONPATH=src python scripts/loadtest.py --duration 3 --shards 4 \
        --repeat-ratio 0.5 --out BENCH_loadtest.json

Workload model (the paper's motivating traffic shape — the same
UDF/query templates recur over and over):

* ``--templates`` distinct request graphs form the template pool;
* each request is, with probability ``--repeat-ratio``, a *repeat* of a
  template from the currently-hot window (cache-hittable), otherwise a
  *fresh* graph (a perturbed template with a unique fingerprint — full
  decode/prepare/forward work);
* the hot window rotates through the pool every ``--drift-period``
  seconds, a drifting mix like the feedback subsystem's drift episodes.

Two pacing modes:

* **saturation** (default): ``--concurrency`` closed-loop workers issue
  back-to-back bursts — measures peak throughput;
* **open loop** (``--rate R``): requests are scheduled at fixed arrival
  times regardless of completions, and latency is measured from the
  *scheduled* arrival — queueing delay is charged to the system, not
  hidden by a slow client (no coordinated omission).

A sideband poller samples the engine's ``/stats`` snapshot during the
run and reports its latency percentiles: the statistics surface must
stay responsive exactly while the shards are saturated (it takes no
dispatch lock — DESIGN.md §11).

**Chaos mode** (``--chaos [scenario ...]``) replaces the throughput run
with the fault scenarios from DESIGN.md §12: each scenario arms a seeded
``repro.serve.faults`` spec against a breaker+fallback engine and
measures what resilience actually delivered — availability over admitted
requests, shed/degraded rates, and the p99 of answered ones — writing
``BENCH_chaos.json``::

    PYTHONPATH=src python scripts/loadtest.py --chaos --duration 2
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
import time
from collections import Counter
from dataclasses import asdict, dataclass, replace
from pathlib import Path

import numpy as np

from repro.core import encoding as enc
from repro.core.joint_graph import JointGraph
from repro.obs import tracing
from repro.feedback import FeedbackLog, FeedbackRecord
from repro.model import CostGNN, GNNConfig
from repro.serve import (
    CircuitBreaker,
    DegradedFallback,
    ModelRegistry,
    PredictionCache,
    PreparedRequestCache,
    ShardedEngine,
    WorkerRouter,
    faults,
)

ROOT = Path(__file__).resolve().parent.parent


@dataclass
class LoadtestConfig:
    """One load-test scenario."""

    duration_s: float = 3.0
    concurrency: int = 4
    repeat_ratio: float = 0.5
    templates: int = 128
    hot_templates: int = 32
    drift_period_s: float = 1.0
    shards: int = 4
    max_batch_size: int = 64
    #: shard coalescing timer; load-test bursts arrive pre-batched, so a
    #: short timer keeps partial miss-batches from idling on the queue
    max_wait_us: float = 200.0
    submit_chunk: int = 64
    rate: float | None = None  # None = closed-loop saturation
    #: score every template once before the clock starts — the same
    #: warm-cache protocol as the committed BENCH_serving baseline
    #: (which reports best-of-N over a warmed engine)
    warmup: bool = True
    #: trace every Nth burst per worker (0 = off); traced runs go
    #: through ``score_resilient`` so the span taxonomy applies, and the
    #: result gains a per-stage breakdown table
    trace_sample: int = 0
    hidden_dim: int = 32
    seed: int = 0


def synthetic_graphs(n_graphs: int, seed: int = 0) -> list[JointGraph]:
    """Random typed DAGs shaped like small joint graphs (15-45 nodes),
    the same shape distribution as ``benchmarks/test_perf_serving.py``."""
    rng = np.random.default_rng(seed)
    types = list(enc.NODE_TYPES)
    graphs = []
    for _ in range(n_graphs):
        n = int(rng.integers(15, 45))
        graph = JointGraph()
        for _ in range(n):
            gtype = types[int(rng.integers(len(types)))]
            graph.add_node(gtype, rng.random(enc.FEATURE_DIMS[gtype]))
        for node in range(1, n):
            graph.add_edge(int(rng.integers(node)), node)
        graph.root_id = n - 1
        graphs.append(graph)
    return graphs


class WorkloadSampler:
    """Per-worker request sampler: repeats from a drifting hot window,
    fresh graphs as uniquely-perturbed template clones."""

    def __init__(self, config: LoadtestConfig, worker: int, started: float):
        self.config = config
        self.templates = synthetic_graphs(config.templates, seed=config.seed)
        self.rng = np.random.default_rng(config.seed * 10_007 + worker)
        self.started = started
        self.fresh_counter = worker * 1_000_000_007  # unique across workers

    def _hot_window(self, now: float) -> tuple[int, int]:
        config = self.config
        hot = min(config.hot_templates, config.templates)
        step = int((now - self.started) / config.drift_period_s)
        offset = (step * hot) % config.templates
        return offset, hot

    def sample(self, now: float) -> JointGraph:
        config = self.config
        if self.rng.random() < config.repeat_ratio:
            offset, hot = self._hot_window(now)
            index = (offset + int(self.rng.integers(hot))) % config.templates
            return self.templates[index]  # the same object every repeat
        base = self.templates[int(self.rng.integers(config.templates))]
        # a template recurrence at a new "selectivity": same topology,
        # one changed feature value — a unique in-range value gives a
        # unique fingerprint, so this request can never hit the prepared
        # or prediction tiers. Only the mutated feature row is copied;
        # the untouched rows are shared read-only with the template.
        self.fresh_counter += 1
        features = list(base.features)
        features[0] = features[0].copy()
        features[0][0] = (self.fresh_counter * 0.6180339887498949) % 1.0
        return JointGraph(
            node_types=base.node_types,
            features=features,
            edges=base.edges,
            root_id=base.root_id,
        )


def _percentiles_ms(latencies: list[float]) -> dict[str, float]:
    if not latencies:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    arr = np.asarray(latencies, dtype=np.float64) * 1e3
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "p99_ms": float(np.percentile(arr, 99)),
    }


def _drive_traffic(config: LoadtestConfig, score, describe) -> dict:
    """The scenario's traffic loop over any scoring backend.

    ``score(batch)`` is the blocking scoring call (in-process engine or
    worker router) and ``describe()`` the /stats snapshot the sideband
    poller samples. Shared by the single-process and multi-process
    scenarios so they measure exactly the same workload.
    """
    started = time.perf_counter()
    deadline = started + config.duration_s
    latencies: list[list[float]] = [[] for _ in range(config.concurrency)]
    counts = [0] * config.concurrency
    stats_latencies: list[float] = []
    stop_poller = threading.Event()

    def worker(index: int) -> None:
        sampler = WorkloadSampler(config, index, started)
        mine = latencies[index]
        bursts = 0
        if config.rate is not None:
            interval = config.submit_chunk * config.concurrency / config.rate
            next_sched = started + (index / config.concurrency) * interval
        while True:
            now = time.perf_counter()
            if now >= deadline:
                return
            if config.rate is not None:
                # open loop: wait for the scheduled arrival, then charge
                # the full scheduled-to-done time to the system
                if next_sched > now:
                    time.sleep(next_sched - now)
                sched = next_sched
                next_sched += interval
            else:
                sched = time.perf_counter()
            batch = [sampler.sample(sched) for _ in range(config.submit_chunk)]
            bursts += 1
            if config.trace_sample > 0 and bursts % config.trace_sample == 0:
                with tracing.trace_request():
                    score(batch)
            else:
                score(batch)
            done = time.perf_counter()
            mine.extend([done - sched] * len(batch))
            counts[index] += len(batch)

    def poller() -> None:
        while not stop_poller.is_set():
            t0 = time.perf_counter()
            describe()  # the /stats snapshot
            stats_latencies.append(time.perf_counter() - t0)
            stop_poller.wait(0.02)

    if config.trace_sample > 0:
        tracing.clear_recent()
    threads = [
        threading.Thread(target=worker, args=(i,), name=f"loadgen-{i}")
        for i in range(config.concurrency)
    ]
    poll_thread = threading.Thread(target=poller, name="stats-poller")
    poll_thread.start()
    run_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - run_start
    stop_poller.set()
    poll_thread.join()

    total = sum(counts)
    flat = [value for worker_lat in latencies for value in worker_lat]
    result = {
        "requests": total,
        "seconds": elapsed,
        "achieved_qps": total / elapsed if elapsed else 0.0,
        **_percentiles_ms(flat),
        "stats_poll": {
            "samples": len(stats_latencies),
            **_percentiles_ms(stats_latencies),
        },
    }
    if config.rate is not None:
        result["target_rate"] = config.rate
    if config.trace_sample > 0:
        result["trace"] = _trace_summary(tracing.recent_traces(64))
    return result


def _trace_summary(traces) -> dict | None:
    """Per-stage attribution over sampled traces (the BENCH_obs table).

    ``share`` is each stage's mean as a fraction of mean end-to-end
    latency; ``span_coverage`` is the fraction the *top-level* spans
    tile (they should approach 1.0 — the 10% acceptance gate).
    """
    if not traces:
        return None
    stages: dict[str, list[float]] = {}
    totals, top_level = [], []
    for trace in traces:
        totals.append(trace.total_seconds())
        top_level.append(trace.top_level_seconds())
        for name, seconds in trace.breakdown().items():
            stages.setdefault(name, []).append(seconds)
    mean_total = float(np.mean(totals))
    e2e_ms = mean_total * 1e3
    doc: dict = {
        "sampled": len(traces),
        "e2e_ms": e2e_ms,
        "span_coverage": (
            float(np.mean(top_level)) / mean_total if mean_total else 0.0
        ),
        "stages": {},
    }
    for name, values in sorted(stages.items()):
        arr = np.asarray(values, dtype=np.float64) * 1e3
        doc["stages"][name] = {
            "ms": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "share": float(arr.mean()) / e2e_ms if e2e_ms else 0.0,
        }
    return doc


def run_loadtest(config: LoadtestConfig) -> dict:
    """Run one scenario; returns the result document (JSON-ready)."""
    model = CostGNN(GNNConfig(hidden_dim=config.hidden_dim, seed=config.seed))
    model.eval()
    engine = ShardedEngine(
        model,
        shards=config.shards,
        max_batch_size=config.max_batch_size,
        max_wait_us=config.max_wait_us,
        request_cache=PreparedRequestCache(),
        prediction_cache=PredictionCache(),
    )
    if config.warmup:
        templates = synthetic_graphs(config.templates, seed=config.seed)
        for start in range(0, len(templates), config.max_batch_size):
            engine.score(templates[start : start + config.max_batch_size])
    score = engine.score if config.trace_sample == 0 else engine.score_resilient
    with engine:
        core = _drive_traffic(config, score, engine.describe)
        description = engine.describe()

    prediction = description.get("prediction_cache", {})
    request = description.get("request_cache", {})
    return {
        "config": asdict(config),
        **core,
        "prediction_cache_hit_rate": prediction.get("hit_rate", 0.0),
        "prepared_hits": request.get("prepared_hits", 0),
        "prepared_misses": request.get("prepared_misses", 0),
        "engine_stats": description["stats"],
    }


def run_multiproc_loadtest(config: LoadtestConfig, workers: int) -> dict:
    """One scenario against a :class:`WorkerRouter` of worker processes.

    The model is published to a throwaway registry (the workers load it
    from there — the same distribution path a deployment uses) and the
    traffic loop is byte-identical to the single-process scenario, so
    the two QPS figures compare directly. The result carries the smoke
    signals CI gates on: ``worker_crashes`` (any respawn during a
    healthy run is a crash), ``hung_workers`` (non-zero when shutdown
    had to terminate a worker), and ``achieved_qps``.
    """
    model = CostGNN(GNNConfig(hidden_dim=config.hidden_dim, seed=config.seed))
    model.eval()
    registry_dir = tempfile.TemporaryDirectory(prefix="loadtest-registry-")
    ModelRegistry(registry_dir.name).publish("loadtest", model)
    router = WorkerRouter(
        registry_dir.name,
        "loadtest",
        workers=workers,
        shards_per_worker=1,
        max_batch_size=config.max_batch_size,
        max_wait_us=config.max_wait_us,
    )
    try:
        if config.warmup:
            templates = synthetic_graphs(config.templates, seed=config.seed)
            for start in range(0, len(templates), config.max_batch_size):
                router.score(templates[start : start + config.max_batch_size])
        score = router.score if config.trace_sample == 0 else router.score_resilient
        core = _drive_traffic(config, score, router.describe)
        description = router.describe(include_workers=True)
    finally:
        hung = router.close()
        registry_dir.cleanup()

    # aggregate the per-worker engine caches into the same shape the
    # single-process result reports
    prepared_hits = prepared_misses = 0
    pred_hits = pred_misses = 0
    for stats in description.get("worker_stats", []):
        engine = stats.get("engine", {})
        request = engine.get("request_cache", {})
        prepared_hits += request.get("prepared_hits", 0)
        prepared_misses += request.get("prepared_misses", 0)
        prediction = engine.get("prediction_cache", {})
        pred_hits += prediction.get("hits", 0)
        pred_misses += prediction.get("misses", 0)
    pred_total = pred_hits + pred_misses
    return {
        "config": asdict(config),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        **core,
        "prediction_cache_hit_rate": pred_hits / pred_total if pred_total else 0.0,
        "prepared_hits": prepared_hits,
        "prepared_misses": prepared_misses,
        "router_stats": description["stats"],
        "worker_crashes": description["stats"]["respawns"],
        "hung_workers": hung,
    }


# ---------------------------------------------------------------------------
# chaos harness (DESIGN.md §12)
# ---------------------------------------------------------------------------

#: the scenario book. Each entry pairs a fault spec (seeded per run, so a
#: scenario's decision sequence is reproducible) with the engine knobs
#: that make the failure bite; ``overrides`` reshape the workload config.
#: Probabilities are tuned for a few-second closed-loop run: enough fires
#: to exercise every recovery path, not so many the run measures nothing
#: but recovery.
CHAOS_SCENARIOS: dict[str, dict] = {
    "shard_storm": {
        "summary": "shard workers crash mid-batch; the supervisor revives "
        "them and stranded requests retry on healthy shards",
        "faults": "shard.worker:crash:0.005",
    },
    "brownout": {
        "summary": "slow forwards trip the latency breaker; the degraded "
        "tier (prediction cache, then GBM fallback) keeps answering",
        "faults": "forward:delay:0.5:0.05",
        "breaker_latency_s": 0.015,
    },
    "disk_flake": {
        "summary": "feedback chunk writes fail; the flusher backs off and "
        "quarantines poison chunks — no record is lost silently",
        "faults": "feedback.flush:error:0.7",
        "feedback": True,
    },
    "flash_flood": {
        "summary": "offered load far over a small admission queue; the "
        "excess sheds cleanly while admitted requests complete",
        "faults": "",
        "queue_cap": 64,
        "overrides": {"concurrency": 8, "submit_chunk": 64, "repeat_ratio": 0.0},
    },
    "storm_mix": {
        "summary": "crashes + forward faults + disk failures at once — the "
        "acceptance scenario: >=99% of admitted requests answered",
        "faults": "shard.worker:crash:0.003;forward:error:0.02;"
        "feedback.flush:error:0.5",
        "feedback": True,
    },
}


def run_chaos_scenario(base: LoadtestConfig, name: str) -> dict:
    """Run one named chaos scenario; returns its result document.

    The engine is warmed *before* faults are armed — the prediction cache
    and the degraded tier's reservoir get their baseline from a healthy
    engine, the same state a long-running service would have when a
    failure hits it.
    """
    spec = CHAOS_SCENARIOS[name]
    config = replace(base, **spec.get("overrides", {}))
    deadline_s = spec.get("deadline_ms", 1000.0) / 1e3
    model = CostGNN(GNNConfig(hidden_dim=config.hidden_dim, seed=config.seed))
    model.eval()
    breaker = CircuitBreaker(
        max_latency_s=spec.get("breaker_latency_s"), cooldown_s=0.5
    )
    engine = ShardedEngine(
        model,
        shards=config.shards,
        max_batch_size=config.max_batch_size,
        max_wait_us=config.max_wait_us,
        request_cache=PreparedRequestCache(),
        prediction_cache=PredictionCache(),
        max_queue=spec.get("queue_cap"),
        breaker=breaker,
        fallback=DegradedFallback(),
    )
    feedback_dir = feedback_log = None
    if spec.get("feedback"):
        feedback_dir = tempfile.TemporaryDirectory(prefix="chaos-feedback-")
        feedback_log = FeedbackLog(
            feedback_dir.name, capacity=1_000_000, chunk_records=64,
            flush_age_s=0.05,
        )
        feedback_log.backoff_cap_s = 0.5  # keep retry waits inside the run
        feedback_log.poison_after = 3

    templates = synthetic_graphs(config.templates, seed=config.seed)
    for start in range(0, len(templates), config.max_batch_size):
        engine.score_resilient(templates[start : start + config.max_batch_size])

    injector = faults.install(spec["faults"], seed=config.seed)
    started = time.perf_counter()
    until = started + config.duration_s
    tallies = [Counter() for _ in range(config.concurrency)]
    latencies: list[list[float]] = [[] for _ in range(config.concurrency)]

    def worker(index: int) -> None:
        sampler = WorkloadSampler(config, index, started)
        tally, mine = tallies[index], latencies[index]
        while time.perf_counter() < until:
            batch = [
                sampler.sample(time.perf_counter())
                for _ in range(config.submit_chunk)
            ]
            t0 = time.perf_counter()
            outcome = engine.score_resilient(
                batch, deadline=time.monotonic() + deadline_s
            )
            elapsed = time.perf_counter() - t0
            answered = 0
            for status in outcome.statuses:
                tally[status] += 1
                answered += status in ("ok", "degraded")
            mine.extend([elapsed] * answered)
            if feedback_log is not None:
                # the serving path's observe-report stream, a trickle per
                # burst — enough to keep the flusher writing under fire
                for value in outcome.values[:4]:
                    if value is None:
                        continue
                    feedback_log.append(
                        FeedbackRecord(
                            predicted=value,
                            observed=abs(value) * 1.07 + 1e-6,
                            segment="chaos",
                        )
                    )

    threads = [
        threading.Thread(
            target=worker, args=(i,), name=f"chaos-{name}-{i}", daemon=True
        )
        for i in range(config.concurrency)
    ]
    for t in threads:
        t.start()
    # the no-hung-clients guarantee, enforced: every worker must return.
    # Daemon threads + a hard join budget mean a wedged scenario is
    # *reported* (hung_workers > 0) instead of wedging the harness.
    join_by = time.perf_counter() + config.duration_s + 30.0
    hung = 0
    for t in threads:
        t.join(timeout=max(0.0, join_by - time.perf_counter()))
        hung += t.is_alive()
    fault_report = injector.describe()
    faults.uninstall()

    feedback_report = None
    if feedback_log is not None:
        feedback_log.drain(10.0)
        stats = feedback_log.stats()
        replayed = len(feedback_log.replay())
        accounted = replayed + stats["poison_records"] + stats["dropped_pending"]
        feedback_report = {
            "appended": stats["appended"],
            "replayable": replayed,
            "write_errors": stats["write_errors"],
            "quarantined_chunks": stats["quarantined_chunks"],
            "poison_records": stats["poison_records"],
            "dropped_pending": stats["dropped_pending"],
            "records_accounted_for": accounted == stats["appended"],
        }
        feedback_log.close()
        feedback_dir.cleanup()
    restarts = engine.restarts
    if not hung:
        engine.close()

    tally: Counter = Counter()
    for partial in tallies:
        tally.update(partial)
    total = sum(tally.values())
    shed = tally["shed_overload"] + tally["shed_deadline"]
    answered = tally["ok"] + tally["degraded"]
    admitted = total - shed
    flat = [value for mine in latencies for value in mine]
    result = {
        "scenario": name,
        "summary": spec["summary"],
        "faults": spec["faults"],
        "requests": total,
        "ok": tally["ok"],
        "degraded": tally["degraded"],
        "shed_overload": tally["shed_overload"],
        "shed_deadline": tally["shed_deadline"],
        "errors": tally["error"],
        "admitted": admitted,
        "availability": answered / admitted if admitted else 1.0,
        "shed_rate": shed / total if total else 0.0,
        "degraded_rate": tally["degraded"] / total if total else 0.0,
        "hung_workers": hung,
        "shard_restarts": restarts,
        "breaker_trips": breaker.describe()["trips"],
        "fault_fires": {
            f"{rule['site']}:{rule['kind']}": rule["fired"]
            for rule in fault_report["rules"]
        },
        **_percentiles_ms(flat),
    }
    if feedback_report is not None:
        result["feedback"] = feedback_report
    return result


def run_chaos(config: LoadtestConfig, names: list[str]) -> dict:
    """Run the named scenarios; returns the ``BENCH_chaos.json`` document."""
    scenarios: dict[str, dict] = {}
    for name in names:
        print(f"chaos scenario {name}: {CHAOS_SCENARIOS[name]['summary']}")
        result = run_chaos_scenario(config, name)
        scenarios[name] = result
        shed = result["shed_overload"] + result["shed_deadline"]
        print(
            f"  {result['requests']} requests: {result['ok']} ok, "
            f"{result['degraded']} degraded, {shed} shed, "
            f"{result['errors']} errors -> availability "
            f"{result['availability']:.4f}, p99 {result['p99_ms']:.2f}ms"
        )
    return {
        "config": asdict(config),
        "scenarios": scenarios,
        "min_availability": min(s["availability"] for s in scenarios.values()),
        "hung_workers": sum(s["hung_workers"] for s in scenarios.values()),
    }


def _print_trace_table(trace: dict | None) -> None:
    if not trace:
        return
    print(
        f"trace sample: {trace['sampled']} requests, "
        f"mean e2e {trace['e2e_ms']:.2f}ms, "
        f"top-level span coverage {trace['span_coverage']:.1%}"
    )
    for name, row in trace["stages"].items():
        print(
            f"  {name:<20} {row['ms']:>8.3f}ms mean "
            f"{row['p50']:>8.3f}ms p50  {row['share']:>6.1%} of e2e"
        )


def serving_baseline_rps() -> float | None:
    """The committed micro-batched baseline (PR 3's BENCH_serving.json)."""
    path = ROOT / "BENCH_serving.json"
    try:
        with open(path) as fh:
            return float(json.load(fh)["batched"]["requests_per_second"])
    except (OSError, KeyError, ValueError, json.JSONDecodeError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=3.0)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--repeat-ratio", type=float, default=0.5)
    parser.add_argument("--templates", type=int, default=128)
    parser.add_argument("--hot-templates", type=int, default=32)
    parser.add_argument("--drift-period", type=float, default=1.0)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--max-batch-size", type=int, default=64)
    parser.add_argument("--submit-chunk", type=int, default=32)
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop arrival rate in req/s (default: closed-loop saturation)",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=0,
        help="trace every Nth burst and report a per-stage latency "
        "breakdown (0 = off); writes BENCH_obs.json unless --out is given",
    )
    parser.add_argument("--hidden-dim", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="drive a WorkerRouter of N worker processes instead of the "
        "in-process engine; exits non-zero on worker crash, hung "
        "shutdown, or zero aggregate QPS (the CI multiproc-smoke gate)",
    )
    parser.add_argument("--out", default="", help="write the result JSON here")
    parser.add_argument(
        "--chaos",
        nargs="*",
        metavar="SCENARIO",
        default=None,
        help="run fault scenarios instead of the throughput loadtest "
        f"(no names = all of: {', '.join(CHAOS_SCENARIOS)}); "
        "writes BENCH_chaos.json unless --out is given",
    )
    args = parser.parse_args(argv)

    config = LoadtestConfig(
        duration_s=args.duration,
        concurrency=args.concurrency,
        repeat_ratio=args.repeat_ratio,
        templates=args.templates,
        hot_templates=args.hot_templates,
        drift_period_s=args.drift_period,
        shards=args.shards,
        max_batch_size=args.max_batch_size,
        submit_chunk=args.submit_chunk,
        rate=args.rate,
        trace_sample=args.trace_sample,
        hidden_dim=args.hidden_dim,
        seed=args.seed,
    )
    if args.trace_sample > 0 and not args.out:
        args.out = "BENCH_obs.json"
    if args.chaos is not None:
        names = args.chaos or list(CHAOS_SCENARIOS)
        unknown = [n for n in names if n not in CHAOS_SCENARIOS]
        if unknown:
            parser.error(
                f"unknown chaos scenario(s) {unknown}; "
                f"know {list(CHAOS_SCENARIOS)}"
            )
        doc = run_chaos(config, names)
        out = args.out or "BENCH_chaos.json"
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(
            f"min availability {doc['min_availability']:.4f}, "
            f"hung workers {doc['hung_workers']} -> wrote {out}"
        )
        return 1 if doc["hung_workers"] else 0
    if args.workers > 0:
        result = run_multiproc_loadtest(config, args.workers)
        print(
            f"{result['requests']} requests in {result['seconds']:.2f}s over "
            f"{args.workers} worker processes = "
            f"{result['achieved_qps']:,.0f} req/s aggregate "
            f"(p50 {result['p50_ms']:.2f}ms / p99 {result['p99_ms']:.2f}ms)"
        )
        print(
            f"router: {result['router_stats']['spills']} spills, "
            f"{result['router_stats']['retries']} retries, "
            f"{result['worker_crashes']} crashes, "
            f"{result['hung_workers']} hung at shutdown"
        )
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(result, fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.out}")
        failures = []
        if result["worker_crashes"]:
            failures.append(f"{result['worker_crashes']} worker crash(es)")
        if result["hung_workers"]:
            failures.append(f"{result['hung_workers']} hung worker(s) at shutdown")
        if result["achieved_qps"] <= 0:
            failures.append("zero aggregate QPS")
        if failures:
            print(f"MULTIPROC SMOKE FAILED: {'; '.join(failures)}")
            return 1
        return 0
    result = run_loadtest(config)
    baseline = serving_baseline_rps()
    if baseline:
        result["baseline_serving_batched_rps"] = baseline
        result["speedup_vs_serving_batched"] = result["achieved_qps"] / baseline

    print(
        f"{result['requests']} requests in {result['seconds']:.2f}s = "
        f"{result['achieved_qps']:,.0f} req/s "
        f"(p50 {result['p50_ms']:.2f}ms / p95 {result['p95_ms']:.2f}ms / "
        f"p99 {result['p99_ms']:.2f}ms)"
    )
    print(
        f"prediction-cache hit rate {result['prediction_cache_hit_rate']:.1%}, "
        f"stats-poll p95 {result['stats_poll']['p95_ms']:.2f}ms"
    )
    _print_trace_table(result.get("trace"))
    if baseline:
        print(
            f"vs committed batched baseline {baseline:,.0f} req/s: "
            f"{result['speedup_vs_serving_batched']:.2f}x"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
