#!/usr/bin/env bash
# Run the perf benchmarks (excluded from the default pytest run).
#
#   scripts/bench.sh                  # pipeline throughput -> BENCH_pipeline.json
#   scripts/bench.sh benchmarks/...   # any explicit perf-marked selection
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
selection=("benchmarks/test_perf_pipeline.py")
if [ "$#" -gt 0 ]; then
    selection=("$@")
fi
exec python -m pytest "${selection[@]}" -m perf -q -s
