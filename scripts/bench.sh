#!/usr/bin/env bash
# Run the perf benchmarks (excluded from the default pytest run).
#
#   scripts/bench.sh                  # pipeline + serving -> BENCH_*.json
#   scripts/bench.sh benchmarks/...   # any explicit perf-marked selection
#
# CI contract (.github/workflows/ci.yml `bench-smoke` job):
#   * `set -euo pipefail` + explicit status propagation: a failing
#     benchmark fails the job even though the JSON summary still prints;
#   * REPRO_SCALE / REPRO_JOBS env overrides pass straight through to
#     the experiment layer (quick scale + bounded workers on CI);
#   * the last line is a one-line JSON summary of every BENCH_*.json
#     (prefixed BENCH_SUMMARY) so the perf trajectory is greppable from
#     the job log next to the uploaded artifacts.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export REPRO_SCALE="${REPRO_SCALE:-default}"
if [ -n "${REPRO_JOBS:-}" ]; then
    export REPRO_JOBS
fi

selection=(
    benchmarks/test_perf_pipeline.py
    benchmarks/test_perf_serving.py
    benchmarks/test_perf_feedback.py
    benchmarks/test_perf_loadtest.py
    benchmarks/test_perf_obs.py
    benchmarks/test_perf_chaos.py
    benchmarks/test_perf_realbench.py
    benchmarks/test_perf_runner.py
)
if [ "$#" -gt 0 ]; then
    selection=("$@")
fi

status=0
python -m pytest "${selection[@]}" -m perf -q -s || status=$?

python - <<'PY'
import glob
import json

def speedups(node, prefix=""):
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (int, float)) and "speedup" in key:
                out[path] = round(float(value), 2)
            else:
                out.update(speedups(value, path))
    return out

summary = {}
for path in sorted(glob.glob("BENCH_*.json")):
    with open(path) as fh:
        data = json.load(fh)
    summary[path[len("BENCH_"):-len(".json")]] = speedups(data)
print("BENCH_SUMMARY " + json.dumps(summary, separators=(",", ":"), sort_keys=True))
PY

exit "$status"
