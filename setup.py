"""Legacy setup shim: the offline environment lacks the `wheel` package,
so PEP 660 editable installs are unavailable. This file enables
``pip install -e . --no-build-isolation`` via setuptools' develop mode."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    extras_require={
        # real-engine execution backend (repro.exec.duckdb_backend) and
        # SQL-AST validation in the render tests
        "duckdb": ["duckdb>=0.9", "sqlglot>=20.0"],
    },
)
